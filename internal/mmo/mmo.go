// Package mmo implements the Matyas-Meyer-Oseas (MMO) one-way hash
// construction over AES-128, as used by ALPHA's wireless-sensor-network
// evaluation (§4.1.3 of the paper). Sensor platforms such as the CC2430
// carry AES hardware but no dedicated hash engine, which makes a
// block-cipher-based hash the natural primitive there.
//
// MMO turns a block cipher E into a compression function
//
//	H_i = E(g(H_{i-1}), m_i) XOR m_i
//
// where g maps the previous digest to a cipher key (identity here, since
// the AES-128 key and block sizes are both 16 bytes). The digest size is
// the cipher block size: 16 bytes. Messages are padded with the standard
// Merkle-Damgård 0x80 || 0x00* || length scheme so that distinct inputs
// cannot collide by simple extension.
package mmo

import (
	"crypto/aes"
	"encoding/binary"
	"hash"
)

// Size is the MMO digest size in bytes (one AES block).
const Size = 16

// BlockSize is the MMO input block size in bytes.
const BlockSize = 16

// iv is the fixed initial chaining value. Any public constant works; we use
// the byte pattern from the all-zero key expansion convention.
var iv = [Size]byte{
	0x4d, 0x4d, 0x4f, 0x2d, 0x41, 0x45, 0x53, 0x31,
	0x32, 0x38, 0x2d, 0x41, 0x4c, 0x50, 0x48, 0x41,
}

// digest implements hash.Hash for the MMO construction.
type digest struct {
	h       [Size]byte      // chaining value
	buf     [BlockSize]byte // pending partial block
	scratch [Size]byte      // compress output scratch, hoisted off the stack path
	n       int             // bytes buffered in buf
	len     uint64          // total message length in bytes
}

// New returns a new MMO-AES128 hash.Hash computing a 16-byte digest.
func New() hash.Hash {
	d := &digest{}
	d.Reset()
	return d
}

// Sum computes the MMO digest of data in one call.
func Sum(data []byte) [Size]byte {
	d := digest{}
	d.Reset()
	d.Write(data)
	var out [Size]byte
	d.checkSum(&out)
	return out
}

// SumInto computes the MMO digest of the concatenation of parts in one shot
// and appends it to dst, returning the extended slice. The digest state
// lives on the caller's stack, so the only heap work is the per-block AES
// key schedule that is inherent to the construction (see compress).
func SumInto(dst []byte, parts ...[]byte) []byte {
	d := digest{}
	d.Reset()
	for _, p := range parts {
		d.Write(p)
	}
	var out [Size]byte
	d.checkSum(&out)
	return append(dst, out[:]...)
}

func (d *digest) Reset() {
	d.h = iv
	d.n = 0
	d.len = 0
}

func (d *digest) Size() int      { return Size }
func (d *digest) BlockSize() int { return BlockSize }

func (d *digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.n > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize {
			d.compress(d.buf[:])
			d.n = 0
		}
	}
	for len(p) >= BlockSize {
		d.compress(p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.n = copy(d.buf[:], p)
	}
	return n, nil
}

// compress applies one MMO compression step: h = AES_h(m) XOR m.
//
// The aes.NewCipher call per block is inherent to MMO: the construction
// re-keys the cipher with the chaining value h for every block, so each
// block needs a fresh AES key schedule. A cipher cache cannot help because
// the key changes on every call; only an expanded-key-reuse API in
// crypto/aes could remove this allocation.
func (d *digest) compress(block []byte) {
	c, err := aes.NewCipher(d.h[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes; ours is fixed.
		panic("mmo: internal key size error: " + err.Error())
	}
	out := &d.scratch
	c.Encrypt(out[:], block)
	for i := range out {
		d.h[i] = out[i] ^ block[i]
	}
}

func (d *digest) Sum(in []byte) []byte {
	// Copy so that Sum does not disturb the running state.
	dd := *d
	var out [Size]byte
	dd.checkSum(&out)
	return append(in, out[:]...)
}

// checkSum applies Merkle-Damgård strengthening and finalizes the digest.
func (d *digest) checkSum(out *[Size]byte) {
	msgLen := d.len
	// Padding: 0x80, zeros, then the 64-bit big-endian bit length in the
	// final 8 bytes of a block — emitted as one Write of the whole padded
	// tail instead of a byte-at-a-time loop.
	var pad [2 * BlockSize]byte
	pad[0] = 0x80
	n := BlockSize - 8 - d.n
	if n <= 0 {
		n += BlockSize
	}
	binary.BigEndian.PutUint64(pad[n:n+8], msgLen<<3)
	d.Write(pad[:n+8])
	if d.n != 0 {
		panic("mmo: padding error")
	}
	*out = d.h
}
