// Package workload generates the traffic patterns of the paper's three
// application scenarios (§4.1): infrequent signaling messages (HIP-style
// association updates on mobile devices), high-volume bulk streams (WMN
// data transfers), and periodic sensor readings (WSNs). Generators are
// deterministic under a seed so experiments are reproducible.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"
)

// Message is one application payload with its release time.
type Message struct {
	At      time.Duration // offset from workload start
	Payload []byte
}

// Generator produces a finite message sequence.
type Generator interface {
	// Name identifies the workload in experiment output.
	Name() string
	// Messages materializes the full sequence.
	Messages() []Message
}

// Signaling models low-volume control traffic: small messages at randomized
// intervals, like the mobility and middlebox signaling of §4.1.1.
type Signaling struct {
	Seed    int64
	Count   int
	MeanGap time.Duration
	Size    int
}

// Name implements Generator.
func (s Signaling) Name() string { return fmt.Sprintf("signaling(n=%d,gap=%v)", s.Count, s.MeanGap) }

// Messages implements Generator.
func (s Signaling) Messages() []Message {
	rng := rand.New(rand.NewSource(s.Seed))
	out := make([]Message, s.Count)
	at := time.Duration(0)
	for i := range out {
		// Exponential inter-arrival around the mean.
		gap := time.Duration(rng.ExpFloat64() * float64(s.MeanGap))
		at += gap
		out[i] = Message{At: at, Payload: payload(rng, i, s.Size, "SIG")}
	}
	return out
}

// Bulk models a high-volume transfer: back-to-back full-size messages, the
// WMN scenario of §4.1.2.
type Bulk struct {
	Seed  int64
	Count int
	Size  int
	// Pace spaces messages; 0 releases everything at t=0.
	Pace time.Duration
}

// Name implements Generator.
func (b Bulk) Name() string { return fmt.Sprintf("bulk(n=%d,size=%d)", b.Count, b.Size) }

// Messages implements Generator.
func (b Bulk) Messages() []Message {
	rng := rand.New(rand.NewSource(b.Seed))
	out := make([]Message, b.Count)
	for i := range out {
		out[i] = Message{At: time.Duration(i) * b.Pace, Payload: payload(rng, i, b.Size, "BLK")}
	}
	return out
}

// Sensor models periodic sensor readings: small fixed-size samples at a
// fixed rate with jitter, the WSN scenario of §4.1.3.
type Sensor struct {
	Seed   int64
	Count  int
	Period time.Duration
	Jitter time.Duration
	Size   int
}

// Name implements Generator.
func (s Sensor) Name() string { return fmt.Sprintf("sensor(n=%d,period=%v)", s.Count, s.Period) }

// Messages implements Generator.
func (s Sensor) Messages() []Message {
	rng := rand.New(rand.NewSource(s.Seed))
	out := make([]Message, s.Count)
	for i := range out {
		at := time.Duration(i) * s.Period
		if s.Jitter > 0 {
			at += time.Duration(rng.Int63n(int64(s.Jitter)))
		}
		out[i] = Message{At: at, Payload: payload(rng, i, s.Size, "SNS")}
	}
	return out
}

// payload builds a deterministic, self-describing payload: a tag, the
// message index, and pseudorandom filler. The index prefix lets tests check
// ordering and completeness without external bookkeeping.
func payload(rng *rand.Rand, i, size int, tag string) []byte {
	if size < 8 {
		size = 8
	}
	p := make([]byte, size)
	copy(p, tag)
	binary.BigEndian.PutUint32(p[4:], uint32(i))
	rng.Read(p[8:])
	return p
}

// Index recovers the message index embedded by the generators, or -1.
func Index(payload []byte) int {
	if len(payload) < 8 {
		return -1
	}
	return int(binary.BigEndian.Uint32(payload[4:]))
}
