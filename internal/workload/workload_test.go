package workload

import (
	"bytes"
	"testing"
	"time"
)

func TestSignalingDeterministic(t *testing.T) {
	g := Signaling{Seed: 1, Count: 20, MeanGap: time.Second, Size: 64}
	a := g.Messages()
	b := g.Messages()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("counts %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || !bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	// Release times are nondecreasing.
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("times not monotone at %d", i)
		}
	}
}

func TestSignalingSeedsDiffer(t *testing.T) {
	a := Signaling{Seed: 1, Count: 5, MeanGap: time.Second, Size: 64}.Messages()
	b := Signaling{Seed: 2, Count: 5, MeanGap: time.Second, Size: 64}.Messages()
	same := true
	for i := range a {
		if !bytes.Equal(a[i].Payload, b[i].Payload) {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical payloads")
	}
}

func TestBulkPacing(t *testing.T) {
	g := Bulk{Seed: 3, Count: 10, Size: 1024, Pace: 5 * time.Millisecond}
	msgs := g.Messages()
	for i, m := range msgs {
		if len(m.Payload) != 1024 {
			t.Fatalf("message %d size %d", i, len(m.Payload))
		}
		if m.At != time.Duration(i)*5*time.Millisecond {
			t.Fatalf("message %d at %v", i, m.At)
		}
	}
}

func TestSensorPeriodAndJitter(t *testing.T) {
	g := Sensor{Seed: 4, Count: 10, Period: time.Second, Jitter: 100 * time.Millisecond, Size: 16}
	msgs := g.Messages()
	for i, m := range msgs {
		base := time.Duration(i) * time.Second
		if m.At < base || m.At >= base+100*time.Millisecond {
			t.Fatalf("message %d at %v outside jitter window", i, m.At)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	for _, g := range []Generator{
		Signaling{Seed: 1, Count: 8, MeanGap: time.Millisecond, Size: 32},
		Bulk{Seed: 1, Count: 8, Size: 32},
		Sensor{Seed: 1, Count: 8, Period: time.Millisecond, Size: 32},
	} {
		for i, m := range g.Messages() {
			if got := Index(m.Payload); got != i {
				t.Fatalf("%s: message %d decodes index %d", g.Name(), i, got)
			}
		}
	}
	if Index([]byte("short")) != -1 {
		t.Fatalf("short payload should have no index")
	}
}

func TestMinimumSize(t *testing.T) {
	g := Bulk{Seed: 1, Count: 1, Size: 2}
	if got := len(g.Messages()[0].Payload); got != 8 {
		t.Fatalf("payload below minimum: %d", got)
	}
}

func TestNames(t *testing.T) {
	for _, g := range []Generator{
		Signaling{Count: 1, MeanGap: time.Second},
		Bulk{Count: 1, Size: 10},
		Sensor{Count: 1, Period: time.Second},
	} {
		if g.Name() == "" {
			t.Fatalf("empty workload name")
		}
	}
}
