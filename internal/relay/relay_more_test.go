package relay

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/suite"
)

func TestVerdictString(t *testing.T) {
	if Forward.String() != "forward" || Drop.String() != "drop" {
		t.Fatalf("verdict names wrong")
	}
}

// harvestExchange runs one n-message exchange through the relay and returns
// the S2 packets (already processed by endpoints but NOT by the relay for
// the caller's inspection phase when withhold is set).
func (p *pair) harvestS2s(n int) [][]byte {
	p.t.Helper()
	for i := 0; i < n; i++ {
		if _, err := p.a.Send(p.now, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			p.t.Fatal(err)
		}
	}
	p.a.Flush(p.now)
	s1, _ := p.a.Poll(p.now)
	for _, raw := range s1 {
		p.through(p.b, raw)
	}
	a1, _ := p.b.Poll(p.now)
	for _, raw := range a1 {
		p.through(p.a, raw)
	}
	s2s, _ := p.a.Poll(p.now)
	if len(s2s) != n {
		p.t.Fatalf("expected %d S2 packets, got %d", n, len(s2s))
	}
	return s2s
}

func TestRelayBundleAllHonest(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeC, BatchSize: 4, ChainLen: 64, FlushDelay: -1}
	p := newPair(t, cfg, Config{})
	s2s := p.harvestS2s(4)
	hdr, _, err := packet.Decode(s2s[0])
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := packet.EncodeBundle(hdr.Suite, hdr.Assoc, hdr.Flags, s2s)
	if err != nil {
		t.Fatal(err)
	}
	d := p.r.Process(p.now, bundle)
	if d.Verdict != Forward {
		t.Fatalf("honest bundle dropped: %v", d.Reason)
	}
	if d.Rewritten != nil {
		t.Fatalf("honest bundle needlessly re-framed")
	}
	if got := len(d.Extractions()); got != 4 {
		t.Fatalf("extracted %d/4 from bundle", got)
	}
	if len(d.Sub) != 4 {
		t.Fatalf("sub-decisions %d", len(d.Sub))
	}
}

func TestRelayBundleAllBadDropped(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeC, BatchSize: 2, ChainLen: 64, FlushDelay: -1}
	p := newPair(t, cfg, Config{})
	s2s := p.harvestS2s(2)
	hdr, _, err := packet.Decode(s2s[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with both sub-packets.
	for i, raw := range s2s {
		h, m, err := packet.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		s2 := m.(*packet.S2)
		s2.Payload = []byte("evil")
		if s2s[i], err = packet.Encode(h, s2); err != nil {
			t.Fatal(err)
		}
	}
	bundle, err := packet.EncodeBundle(hdr.Suite, hdr.Assoc, hdr.Flags, s2s)
	if err != nil {
		t.Fatal(err)
	}
	d := p.r.Process(p.now, bundle)
	if d.Verdict != Drop {
		t.Fatalf("fully tampered bundle forwarded")
	}
}

func TestRelayCMExchange(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeCM, BatchSize: 8, CMRoots: 4, ChainLen: 64, FlushDelay: -1}
	p := newPair(t, cfg, Config{})
	s2s := p.harvestS2s(8)
	for i, raw := range s2s {
		d := p.r.Process(p.now, raw)
		if d.Verdict != Forward {
			t.Fatalf("CM S2 %d dropped: %v", i, d.Reason)
		}
		if d.Extracted == nil {
			t.Fatalf("CM S2 %d not extracted", i)
		}
	}
	// A tampered CM S2 must fail the subtree proof.
	extra := p.harvestS2s(8)
	h, m, err := packet.Decode(extra[3])
	if err != nil {
		t.Fatal(err)
	}
	s2 := m.(*packet.S2)
	s2.Payload = []byte("evil")
	bad, err := packet.Encode(h, s2)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.r.Process(p.now, bad); d.Verdict != Drop || !errors.Is(d.Reason, core.ErrBadProof) {
		t.Fatalf("tampered CM S2 not dropped: %+v", d)
	}
}

func TestRelayRekeyRotatesWalkers(t *testing.T) {
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 16, FlushDelay: -1}
	p := newPair(t, cfg, Config{})
	// A few exchanges on generation 1.
	for i := 0; i < 3; i++ {
		p.send([]byte("gen1"))
	}
	// In-band rekey, observed by the relay.
	if _, err := p.a.Rekey(p.now); err != nil {
		t.Fatal(err)
	}
	p.pump(30)
	// Generation 2 traffic still verifies at the relay.
	before := p.r.Stats().BadElement
	for i := 0; i < 3; i++ {
		p.send([]byte("gen2"))
	}
	st := p.r.Stats()
	if st.BadElement != before {
		t.Fatalf("relay rejected post-rekey traffic: %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("relay dropped honest traffic across rekey: %+v", st)
	}
}

func TestRelayNackObserved(t *testing.T) {
	// The relay verifies negative acknowledgments too (it buffered the
	// pre-nack from the A1).
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64, FlushDelay: -1, MaxRetries: 1, RTO: time.Hour}
	p := newPair(t, cfg, Config{})
	if _, err := p.a.Send(p.now, []byte("will be tampered")); err != nil {
		t.Fatal(err)
	}
	p.a.Flush(p.now)
	s1, _ := p.a.Poll(p.now)
	for _, raw := range s1 {
		p.through(p.b, raw)
	}
	a1, _ := p.b.Poll(p.now)
	for _, raw := range a1 {
		p.through(p.a, raw)
	}
	s2s, _ := p.a.Poll(p.now)
	// Tamper before it reaches the VERIFIER but after the relay: deliver
	// the tampered copy straight to b (bypassing the relay), so b nacks.
	h, m, err := packet.Decode(s2s[0])
	if err != nil {
		t.Fatal(err)
	}
	s2 := m.(*packet.S2)
	s2.Payload = []byte("evil")
	bad, err := packet.Encode(h, s2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.b.Handle(p.now, bad); err != nil {
		t.Fatal(err)
	}
	a2s, _ := p.b.Poll(p.now)
	if len(a2s) != 1 {
		t.Fatalf("expected one A2 (nack), got %d", len(a2s))
	}
	d := p.r.Process(p.now, a2s[0])
	if d.Verdict != Forward || !d.AckSeen || d.AckPositive {
		t.Fatalf("relay did not observe the verified nack: %+v", d)
	}
}

func TestRelaySuiteOverrideMismatchIgnored(t *testing.T) {
	// An override with a different wire ID must not hijack other suites.
	r := New(Config{SuiteOverride: suite.NewCounting(suite.MMO())})
	st, err := r.resolveSuite(suite.IDSHA1)
	if err != nil || st.ID() != suite.IDSHA1 {
		t.Fatalf("override hijacked foreign suite: %v %v", st, err)
	}
	st, err = r.resolveSuite(suite.IDMMO)
	if err != nil || st.Name() != "MMO-AES128+count" {
		t.Fatalf("override not used for matching suite: %v", st)
	}
	if _, err := r.resolveSuite(77); err == nil {
		t.Fatalf("unknown suite resolved")
	}
}

func TestRelayDuplicateS1Forwarded(t *testing.T) {
	p := newPair(t, baseCfg(), Config{})
	if _, err := p.a.Send(p.now, []byte("dup")); err != nil {
		t.Fatal(err)
	}
	p.a.Flush(p.now)
	s1, _ := p.a.Poll(p.now)
	if d := p.r.Process(p.now, s1[0]); d.Verdict != Forward {
		t.Fatalf("first S1 dropped")
	}
	// A retransmitted S1 is already buffered: forwarded without re-verify.
	if d := p.r.Process(p.now, s1[0]); d.Verdict != Forward {
		t.Fatalf("duplicate S1 dropped")
	}
}

func TestRelayBadAckDropped(t *testing.T) {
	p := newPair(t, baseCfg(), Config{})
	if _, err := p.a.Send(p.now, []byte("m")); err != nil {
		t.Fatal(err)
	}
	p.a.Flush(p.now)
	s1, _ := p.a.Poll(p.now)
	for _, raw := range s1 {
		p.through(p.b, raw)
	}
	a1, _ := p.b.Poll(p.now)
	for _, raw := range a1 {
		p.through(p.a, raw)
	}
	s2, _ := p.a.Poll(p.now)
	for _, raw := range s2 {
		p.through(p.b, raw)
	}
	a2s, _ := p.b.Poll(p.now)
	h, m, err := packet.Decode(a2s[0])
	if err != nil {
		t.Fatal(err)
	}
	a2 := m.(*packet.A2)
	a2.Secret = make([]byte, len(a2.Secret)) // forge the opened secret
	bad, err := packet.Encode(h, a2)
	if err != nil {
		t.Fatal(err)
	}
	d := p.r.Process(p.now, bad)
	if d.Verdict != Drop || !errors.Is(d.Reason, core.ErrBadAck) {
		t.Fatalf("forged A2 secret not dropped: %+v", d)
	}
	if p.r.Stats().BadAck != 1 {
		t.Fatalf("BadAck counter %d", p.r.Stats().BadAck)
	}
}
