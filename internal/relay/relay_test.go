package relay

import (
	"errors"
	"testing"
	"time"

	"alpha/internal/core"
	"alpha/internal/packet"
	"alpha/internal/suite"
)

// pair builds two established endpoints and a relay observing their
// handshake, returning a shuttle that routes packets through the relay.
type pair struct {
	t    *testing.T
	a, b *core.Endpoint
	r    *Relay
	now  time.Time
}

func newPair(t *testing.T, cfg core.Config, rc Config) *pair {
	t.Helper()
	a, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &pair{t: t, a: a, b: b, r: New(rc), now: time.Unix(1_700_000_000, 0)}
	hs1, err := a.StartHandshake(p.now)
	if err != nil {
		t.Fatal(err)
	}
	p.through(p.b, hs1)
	p.pump(10)
	if !a.Established() || !b.Established() {
		t.Fatal("handshake failed")
	}
	return p
}

// through processes raw at the relay and, if forwarded, delivers it.
func (p *pair) through(dst *core.Endpoint, raw []byte) Decision {
	p.t.Helper()
	d := p.r.Process(p.now, raw)
	if d.Verdict == Forward {
		if _, err := dst.Handle(p.now, raw); err != nil {
			p.t.Fatal(err)
		}
	}
	return d
}

func (p *pair) pump(rounds int) {
	for i := 0; i < rounds; i++ {
		p.now = p.now.Add(5 * time.Millisecond)
		outA, _ := p.a.Poll(p.now)
		outB, _ := p.b.Poll(p.now)
		if len(outA) == 0 && len(outB) == 0 {
			return
		}
		for _, raw := range outA {
			p.through(p.b, raw)
		}
		for _, raw := range outB {
			p.through(p.a, raw)
		}
	}
}

func (p *pair) send(payload []byte) {
	p.t.Helper()
	if _, err := p.a.Send(p.now, payload); err != nil {
		p.t.Fatal(err)
	}
	p.a.Flush(p.now)
	p.pump(20)
}

func baseCfg() core.Config {
	return core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 128, FlushDelay: -1}
}

func TestRelayForwardsHonestTraffic(t *testing.T) {
	p := newPair(t, baseCfg(), Config{})
	p.send([]byte("clean"))
	st := p.r.Stats()
	if st.Dropped != 0 {
		t.Fatalf("relay dropped honest traffic: %+v", st)
	}
	// HS1+HS2+S1+A1+S2+A2 = 6 packets forwarded.
	if st.Forwarded != 6 {
		t.Fatalf("forwarded %d, want 6", st.Forwarded)
	}
	if st.ExtractedBytes != 5 {
		t.Fatalf("extracted %d payload bytes, want 5", st.ExtractedBytes)
	}
	if p.r.Flows() != 1 {
		t.Fatalf("flows %d, want 1", p.r.Flows())
	}
}

func TestRelayObservesAcks(t *testing.T) {
	p := newPair(t, baseCfg(), Config{})
	var ackDecision *Decision
	// Manually walk one exchange to capture the A2 decision.
	if _, err := p.a.Send(p.now, []byte("acked")); err != nil {
		t.Fatal(err)
	}
	p.a.Flush(p.now)
	s1, _ := p.a.Poll(p.now)
	for _, raw := range s1 {
		p.through(p.b, raw)
	}
	a1, _ := p.b.Poll(p.now)
	for _, raw := range a1 {
		p.through(p.a, raw)
	}
	s2, _ := p.a.Poll(p.now)
	for _, raw := range s2 {
		p.through(p.b, raw)
	}
	a2, _ := p.b.Poll(p.now)
	for _, raw := range a2 {
		d := p.through(p.a, raw)
		ackDecision = &d
	}
	if ackDecision == nil || !ackDecision.AckSeen || !ackDecision.AckPositive {
		t.Fatalf("relay did not observe the verified ack: %+v", ackDecision)
	}
}

func TestRelayDropsUnsolicitedS2(t *testing.T) {
	p := newPair(t, baseCfg(), Config{})
	s2 := &packet.S2{
		Mode:    packet.ModeBase,
		KeyIdx:  2,
		Key:     make([]byte, 20),
		Payload: []byte("junk"),
	}
	raw, err := packet.Encode(packet.Header{
		Type: packet.TypeS2, Suite: suite.IDSHA1,
		Flags: core.FlagInitiator, Assoc: p.a.Assoc(), Seq: 9,
	}, s2)
	if err != nil {
		t.Fatal(err)
	}
	d := p.r.Process(p.now, raw)
	if d.Verdict != Drop || !errors.Is(d.Reason, core.ErrUnsolicited) {
		t.Fatalf("unsolicited S2 not dropped: %+v", d)
	}
}

func TestRelayDropsTamperedS2(t *testing.T) {
	p := newPair(t, baseCfg(), Config{})
	if _, err := p.a.Send(p.now, []byte("original")); err != nil {
		t.Fatal(err)
	}
	p.a.Flush(p.now)
	s1, _ := p.a.Poll(p.now)
	for _, raw := range s1 {
		p.through(p.b, raw)
	}
	a1, _ := p.b.Poll(p.now)
	for _, raw := range a1 {
		p.through(p.a, raw)
	}
	s2raw, _ := p.a.Poll(p.now)
	hdr, msg, err := packet.Decode(s2raw[0])
	if err != nil {
		t.Fatal(err)
	}
	s2 := msg.(*packet.S2)
	s2.Payload = []byte("tampered")
	bad, err := packet.Encode(hdr, s2)
	if err != nil {
		t.Fatal(err)
	}
	d := p.r.Process(p.now, bad)
	if d.Verdict != Drop || !errors.Is(d.Reason, core.ErrBadMAC) {
		t.Fatalf("tampered S2 not dropped: %+v", d)
	}
	if d.Extracted != nil {
		t.Fatalf("tampered payload extracted")
	}
	// The genuine S2 still passes afterwards.
	d = p.r.Process(p.now, s2raw[0])
	if d.Verdict != Forward || string(d.Extracted) != "original" {
		t.Fatalf("genuine S2 rejected after tamper attempt: %+v", d)
	}
}

func TestRelayMalformedDropped(t *testing.T) {
	r := New(Config{})
	d := r.Process(time.Now(), []byte("not an alpha packet"))
	if d.Verdict != Drop || !errors.Is(d.Reason, ErrMalformed) {
		t.Fatalf("malformed packet not dropped: %+v", d)
	}
	if r.Stats().Malformed != 1 {
		t.Fatalf("malformed counter %d", r.Stats().Malformed)
	}
}

func TestRelayUnknownAssocPolicy(t *testing.T) {
	// Build a valid S1 on an association the relay never saw.
	cfg := baseCfg()
	p := newPair(t, cfg, Config{})
	if _, err := p.a.Send(p.now, []byte("m")); err != nil {
		t.Fatal(err)
	}
	p.a.Flush(p.now)
	s1, _ := p.a.Poll(p.now)

	loose := New(Config{})
	if d := loose.Process(p.now, s1[0]); d.Verdict != Forward {
		t.Fatalf("pass-through relay dropped unknown assoc: %+v", d)
	}
	strict := New(Config{Strict: true})
	if d := strict.Process(p.now, s1[0]); d.Verdict != Drop || !errors.Is(d.Reason, ErrStrictPolicy) {
		t.Fatalf("strict relay forwarded unknown assoc: %+v", d)
	}
}

func TestRelayS1RateLimit(t *testing.T) {
	p := newPair(t, baseCfg(), Config{S1Rate: 1, S1Burst: 2})
	limited := 0
	for i := 0; i < 10; i++ {
		if _, err := p.a.Send(p.now, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		p.a.Flush(p.now)
		out, _ := p.a.Poll(p.now)
		for _, raw := range out {
			if hdr, _, err := packet.Decode(raw); err == nil && hdr.Type == packet.TypeS1 {
				if d := p.r.Process(p.now, raw); errors.Is(d.Reason, ErrRateLimited) {
					limited++
				}
			}
		}
	}
	if limited == 0 {
		t.Fatalf("rate limiter never fired")
	}
	if got := p.r.Stats().RateLimited; int(got) != limited {
		t.Fatalf("stats.RateLimited %d, want %d", got, limited)
	}
}

func TestRelayAdaptiveS1SizeLimit(t *testing.T) {
	rc := Config{InitialS1Limit: 80, MaxS1Limit: 4096}
	p := newPair(t, core.Config{Mode: packet.ModeC, Reliable: true, ChainLen: 256, BatchSize: 32, FlushDelay: -1}, rc)
	// A 32-MAC S1 greatly exceeds the 80-byte initial budget.
	for i := 0; i < 32; i++ {
		if _, err := p.a.Send(p.now, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p.a.Flush(p.now)
	s1, _ := p.a.Poll(p.now)
	d := p.r.Process(p.now, s1[0])
	if d.Verdict != Drop || !errors.Is(d.Reason, ErrOversizedS1) {
		t.Fatalf("oversized S1 not limited: %+v", d)
	}
	if p.r.Stats().Oversized != 1 {
		t.Fatalf("oversized counter %d", p.r.Stats().Oversized)
	}
}

func TestRelayAdaptiveS1LimitGrowsWithGoodBehavior(t *testing.T) {
	rc := Config{InitialS1Limit: 256, MaxS1Limit: 1 << 20}
	p := newPair(t, baseCfg(), rc)
	// Each fully acked exchange doubles the budget.
	for i := 0; i < 4; i++ {
		p.send([]byte("well-behaved"))
	}
	f := p.r.flows[p.a.Assoc()]
	if f.s1Limit <= 256 {
		t.Fatalf("S1 limit did not grow: %d", f.s1Limit)
	}
}

func TestRelayRequireProtected(t *testing.T) {
	r := New(Config{RequireProtected: true})
	// An unprotected HS1 must be dropped.
	cfg := baseCfg()
	a, err := core.NewEndpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1, err := a.StartHandshake(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	d := r.Process(time.Now(), hs1)
	if d.Verdict != Drop {
		t.Fatalf("unsigned handshake accepted by RequireProtected relay")
	}
}

func TestRelayBufferAccounting(t *testing.T) {
	p := newPair(t, core.Config{Mode: packet.ModeC, Reliable: false, ChainLen: 128, BatchSize: 8, FlushDelay: -1}, Config{})
	for i := 0; i < 8; i++ {
		if _, err := p.a.Send(p.now, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p.a.Flush(p.now)
	s1, _ := p.a.Poll(p.now)
	p.r.Process(p.now, s1[0])
	sig, _ := p.r.BufferedBytes()
	if want := 8 * 20; sig != want {
		t.Fatalf("relay buffers %d pre-signature bytes, want %d (n·h)", sig, want)
	}
}

func TestRelaySeededFlowVerifiesWithoutHandshake(t *testing.T) {
	// §3.4 static bootstrapping: the base station provisions endpoints
	// AND relays; no handshake ever crosses the relay, yet it verifies.
	cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 64, FlushDelay: -1, Suite: suite.MMO()}
	pi, pr, anchors, err := core.Provision(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewPreconfiguredEndpoint(pi)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewPreconfiguredEndpoint(pr)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Config{Strict: true}) // strict: unseeded flows would die here
	if err := r.Seed(suite.MMO(), anchors); err != nil {
		t.Fatal(err)
	}
	p := &pair{t: t, a: a, b: b, r: r, now: time.Unix(1_700_000_000, 0)}
	p.send([]byte("provisioned"))
	st := r.Stats()
	if st.Dropped != 0 || st.Unknown != 0 {
		t.Fatalf("seeded relay rejected provisioned traffic: %+v", st)
	}
	if st.ExtractedBytes == 0 {
		t.Fatalf("seeded relay never verified a payload")
	}
}

func TestRelayFlowEviction(t *testing.T) {
	r := New(Config{MaxFlows: 2})
	now := time.Now()
	for i := 0; i < 3; i++ {
		a, err := core.NewEndpoint(baseCfg())
		if err != nil {
			t.Fatal(err)
		}
		hs1, err := a.StartHandshake(now)
		if err != nil {
			t.Fatal(err)
		}
		if d := r.Process(now, hs1); d.Verdict != Forward {
			t.Fatalf("handshake %d dropped: %+v", i, d)
		}
	}
	if r.Flows() != 2 {
		t.Fatalf("flow table holds %d, want 2 after eviction", r.Flows())
	}
}

func TestRelayExchangeEviction(t *testing.T) {
	rc := Config{MaxExchanges: 2}
	p := newPair(t, core.Config{Mode: packet.ModeBase, ChainLen: 256, FlushDelay: -1, MaxOutstanding: 8}, rc)
	// Push 4 S1s without completing the exchanges.
	for i := 0; i < 4; i++ {
		if _, err := p.a.Send(p.now, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		p.a.Flush(p.now)
		out, _ := p.a.Poll(p.now)
		for _, raw := range out {
			if hdr, _, err := packet.Decode(raw); err == nil && hdr.Type == packet.TypeS1 {
				p.r.Process(p.now, raw)
			}
		}
	}
	f := p.r.flows[p.a.Assoc()]
	if got := len(f.dirs[0].rx); got != 2 {
		t.Fatalf("relay retains %d exchanges, want 2", got)
	}
}
