package relay

import (
	"errors"
	"testing"
	"time"

	"alpha/internal/packet"
)

// TestRelayCountsMalformedDrops checks the typed-error plumbing on the
// relay: an undecodable datagram is dropped with a reason wrapping the
// parser's *packet.ParseError and lands on the dedicated Malformed
// drop-reason counter.
func TestRelayCountsMalformedDrops(t *testing.T) {
	r := New(Config{})
	now := time.Unix(0, 0)
	inputs := [][]byte{
		{},                        // empty datagram
		{0xDE, 0xAD},              // bad magic
		{0xA1, 0xFA, 0x01, 0x7F}, // good magic, truncated header
	}
	for i, in := range inputs {
		d := r.Process(now, in)
		if d.Verdict != Drop {
			t.Fatalf("input %d: verdict %v, want Drop", i, d.Verdict)
		}
		var pe *packet.ParseError
		if !errors.As(d.Reason, &pe) {
			t.Fatalf("input %d: drop reason is %T, want to wrap *packet.ParseError: %v", i, d.Reason, d.Reason)
		}
	}
	if got := r.Telemetry().Malformed.Load(); got != uint64(len(inputs)) {
		t.Fatalf("relay Malformed counter = %d, want %d", got, len(inputs))
	}
}
