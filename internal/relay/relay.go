// Package relay implements ALPHA's forwarding-node side: hop-by-hop
// verification of traffic passing through a node that is neither the signer
// nor the verifier of an association (§3.1, §3.5 of the paper).
//
// A relay learns hash chain anchors by observing handshakes, buffers the
// small pre-signatures announced in S1 packets, and then checks every S2
// against them before forwarding, so forged, tampered and unsolicited
// payloads are dropped at the first honest hop instead of crossing the
// network. Verified payloads are surfaced to the host node (the "secure
// extraction of signed data" that enables middlebox signaling), and A2
// acknowledgments are verified against buffered pre-(n)acks so on-path
// nodes can react to confirmed delivery.
//
// Per §3.5 the only packets a relay forwards unconditionally are S1s, and
// even those are rate- and size-limited per flow to bound the flooding
// surface that remains.
package relay

import (
	"errors"
	"fmt"
	"time"

	"alpha/internal/core"
	"alpha/internal/hashchain"
	"alpha/internal/merkle"
	"alpha/internal/obs"
	"alpha/internal/packet"
	"alpha/internal/suite"
	"alpha/internal/telemetry"
)

// Verdict says what to do with a packet.
type Verdict int

const (
	// Forward passes the packet on toward its destination.
	Forward Verdict = iota
	// Drop discards the packet.
	Drop
)

// String returns the verdict name.
func (v Verdict) String() string {
	if v == Forward {
		return "forward"
	}
	return "drop"
}

// Decision is the outcome of processing one packet.
type Decision struct {
	Verdict Verdict
	// Reason explains a Drop (nil for Forward).
	Reason error
	// Type is the decoded ALPHA packet type (TypeInvalid if undecodable).
	Type packet.Type
	// Extracted holds the verified payload of a forwarded S2: data the
	// relay may act upon (middlebox signaling).
	Extracted []byte
	// AckObserved is set when a verified A2 confirmed delivery of the
	// message with this index (meaningful when AckSeen is true).
	AckSeen     bool
	AckPositive bool
	AckIndex    uint32
	// Rewritten, when non-nil, is the datagram to forward instead of the
	// original: a bundle whose failing sub-packets were stripped.
	Rewritten []byte
	// Sub holds per-packet decisions when the datagram was a bundle.
	Sub []Decision
}

// Extractions collects every verified payload of the decision, including
// sub-packets of a bundle.
func (d *Decision) Extractions() [][]byte {
	var out [][]byte
	if d.Extracted != nil {
		out = append(out, d.Extracted)
	}
	for i := range d.Sub {
		out = append(out, d.Sub[i].Extractions()...)
	}
	return out
}

// Drop reasons specific to relays; verification failures reuse core errors.
var (
	ErrMalformed      = errors.New("relay: malformed packet")
	ErrRateLimited    = errors.New("relay: S1 rate limit exceeded")
	ErrOversizedS1    = errors.New("relay: S1 exceeds per-sender size limit")
	ErrStrictPolicy   = errors.New("relay: unknown association under strict policy")
	ErrUnsolRateLimit = errors.New("relay: unsolicited S1 rate limit exceeded")
)

// Config parameterizes a relay.
type Config struct {
	// Strict drops traffic of unknown associations. The default (false)
	// forwards it unverified, which is the incremental-deployment mode
	// of §3.5: ALPHA-unaware traffic keeps flowing.
	Strict bool
	// MaxFlows bounds the association table.
	MaxFlows int
	// MaxExchanges bounds buffered exchanges per flow and direction.
	MaxExchanges int
	// S1Rate and S1Burst token-bucket S1 packets per flow per second.
	// Zero S1Rate disables rate limiting.
	S1Rate  float64
	S1Burst float64
	// UnsolicitedS1Rate and UnsolicitedS1Burst token-bucket the S1s of
	// associations the relay has never seen a handshake for, per ingress
	// upstream (§3.5: even the packets a relay forwards unconditionally
	// are rate-limited). The per-flow S1Rate bucket cannot cover these —
	// an attacker forging a fresh association ID per packet would mint a
	// fresh bucket per packet. Zero UnsolicitedS1Rate disables the limit,
	// preserving the incremental-deployment pass-through.
	UnsolicitedS1Rate  float64
	UnsolicitedS1Burst float64
	// InitialS1Limit and MaxS1Limit implement the adaptive S1 size
	// policy of §3.5: a flow starts with the small initial budget, and
	// the limit doubles after every verified S2 until MaxS1Limit.
	// Zero InitialS1Limit disables size limiting.
	InitialS1Limit int
	MaxS1Limit     int
	// RequireProtected makes the relay drop handshakes whose anchors are
	// not signed (strong hop-by-hop authentication, §3.4).
	RequireProtected bool
	// SuiteOverride substitutes the hash suite resolved from packet
	// headers, provided it matches the wire ID. The benchmark harness
	// uses this to slot in an operation-counting suite (Table 1).
	SuiteOverride suite.Suite
	// Tracer, if set, records forward/drop events per association so a
	// hop's filtering decisions can be replayed from the /trace endpoint.
	Tracer *telemetry.Tracer
	// Spans, if set, receives one hop-by-hop exchange span per verdict,
	// keyed by the exchange's hash-chain element so this hop's decisions
	// correlate with the sender's and receiver's (internal/obs). Lock-free,
	// allocation-free; nil is free.
	Spans *obs.SpanRing
}

func (c Config) withDefaults() Config {
	if c.MaxFlows == 0 {
		c.MaxFlows = 1024
	}
	if c.MaxExchanges == 0 {
		c.MaxExchanges = 64
	}
	if c.S1Burst == 0 {
		c.S1Burst = 8
	}
	if c.UnsolicitedS1Burst == 0 {
		c.UnsolicitedS1Burst = 16
	}
	if c.MaxS1Limit == 0 {
		c.MaxS1Limit = packet.MaxPacketSize
	}
	return c
}

// Stats counts relay activity.
type Stats struct {
	Forwarded, Dropped                uint64
	Malformed, Unknown, RateLimited   uint64
	BadElement, BadPayload, BadAck    uint64
	Unsolicited, Oversized, Handshake uint64
	StrictPolicy, BadHandshake        uint64
	S1RateLimited                     uint64
	ExtractedBytes                    uint64
}

// Relay is the per-node verification state. Process is not safe for
// concurrent use; the telemetry counters behind Stats() are atomic, so
// snapshots may be taken from other goroutines while the relay runs.
type Relay struct {
	cfg   Config
	flows map[uint64]*flow
	order []uint64

	tel    telemetry.RelayMetrics
	tracer *telemetry.Tracer
	tnow   int64 // caller-supplied clock of the current Process call

	// Per-upstream token buckets for unsolicited S1s: index = the ingress
	// side of the current packet (0/1 for a two-port relay), selected by
	// ProcessFrom. Plain Process charges upstream 0.
	unsol    [2]tokenBucket
	upstream int

	// Hop-by-hop span state: spans is the optional ring from Config;
	// spanKey/spanMode are per-packet scratch set once the packet's
	// exchange (and its chain element) is identified, so the central
	// drop/forward verdicts attribute spans without re-deriving them.
	spans    *obs.SpanRing
	spanKey  uint32
	spanMode uint8
}

// New creates a relay.
func New(cfg Config) *Relay {
	r := &Relay{cfg: cfg.withDefaults(), flows: make(map[uint64]*flow), tracer: cfg.Tracer, spans: cfg.Spans}
	for i := range r.unsol {
		r.unsol[i] = tokenBucket{rate: r.cfg.UnsolicitedS1Rate, burst: r.cfg.UnsolicitedS1Burst}
	}
	r.tel.Init()
	return r
}

// Stats returns a snapshot of the relay's counters.
func (r *Relay) Stats() Stats {
	m := &r.tel
	return Stats{
		Forwarded:      m.Forwarded.Load(),
		Dropped:        m.Dropped.Load(),
		Malformed:      m.Malformed.Load(),
		Unknown:        m.Unknown.Load(),
		RateLimited:    m.RateLimited.Load(),
		BadElement:     m.BadElement.Load(),
		BadPayload:     m.BadPayload.Load(),
		BadAck:         m.BadAck.Load(),
		Unsolicited:    m.Unsolicited.Load(),
		Oversized:      m.Oversized.Load(),
		Handshake:      m.Handshake.Load(),
		StrictPolicy:   m.StrictPolicy.Load(),
		BadHandshake:   m.BadHandshake.Load(),
		S1RateLimited:  m.S1RateLimited.Load(),
		ExtractedBytes: m.ExtractedBytes.Load(),
	}
}

// Telemetry returns the relay's live metric set for export.
func (r *Relay) Telemetry() *telemetry.RelayMetrics { return &r.tel }

// Flows returns the number of tracked associations.
func (r *Relay) Flows() int { return len(r.flows) }

// flow is one observed association.
type flow struct {
	assoc uint64
	st    suite.Suite

	// Chain walkers for both hosts: index 0 = initiator, 1 = responder.
	// prev* hold the pre-rekey generation during the grace window.
	sig     [2]*hashchain.Walker
	ack     [2]*hashchain.Walker
	prevSig [2]*hashchain.Walker
	prevAck [2]*hashchain.Walker

	// Buffered exchanges per signing direction.
	dirs [2]dirState

	bucket  tokenBucket
	s1Limit int

	// Per-flow scratch for MAC inputs and computed digests: S2
	// verification is the relay's per-packet hot path and must not
	// allocate. Relays are single-threaded by contract.
	macIn  []byte
	macOut []byte
	parts  [1][]byte
}

type dirState struct {
	rx    map[uint32]*exchange
	order []uint32
}

// exchange is the relay's buffered state for one signature exchange: the
// S1's pre-signatures plus, once the A1 passes by, its pre-(n)ack material.
// This is exactly the "Relay" column of Tables 2 and 3.
type exchange struct {
	mode      packet.Mode
	keyIdx    uint32
	macs      [][]byte
	root      []byte
	roots     [][]byte
	leafCount int
	// auth is the S1's verified chain element, the exchange's own trust
	// anchor: S2 key elements must hash to it (immune to rekeys).
	auth []byte
	// key caches the verified MAC-key element after the first valid S2
	// so duplicates verify by equality.
	key []byte

	// ackAuth is the A1's verified element (A2 keys must hash to it).
	ackAuth   []byte
	ackKeyIdx uint32
	preAck    []byte
	preNack   []byte
	amtRoot   []byte
	amtLeaves int

	verified []bool
}

// bufferedBytes reports this exchange's pre-signature memory (Table 2).
func (x *exchange) bufferedBytes() int {
	n := len(x.root)
	for _, m := range x.macs {
		n += len(m)
	}
	for _, r := range x.roots {
		n += len(r)
	}
	return n
}

// ackBytes reports the additional acknowledgment state (Table 3).
func (x *exchange) ackBytes() int {
	return len(x.preAck) + len(x.preNack) + len(x.amtRoot)
}

// BufferedBytes sums pre-signature buffer usage across all flows, for the
// Table 2/3 reproduction.
func (r *Relay) BufferedBytes() (preSig, ack int) {
	for _, f := range r.flows {
		for d := range f.dirs {
			for _, x := range f.dirs[d].rx {
				preSig += x.bufferedBytes()
				ack += x.ackBytes()
			}
		}
	}
	return preSig, ack
}

// Seed installs a flow from provisioned anchors (§3.4's static
// bootstrapping: "base stations can provide nodes with pair-wise anchors"),
// so the relay verifies an association whose handshake it never saw — there
// was none.
func (r *Relay) Seed(st suite.Suite, anchors core.AnchorSet) error {
	if len(r.flows) >= r.cfg.MaxFlows {
		r.evictFlow()
	}
	f := &flow{
		assoc:   anchors.Assoc,
		st:      st,
		bucket:  tokenBucket{rate: r.cfg.S1Rate, burst: r.cfg.S1Burst},
		s1Limit: r.cfg.InitialS1Limit,
	}
	f.dirs[0].rx = make(map[uint32]*exchange)
	f.dirs[1].rx = make(map[uint32]*exchange)
	var err error
	if f.sig[0], err = hashchain.NewSignatureWalker(st, anchors.InitSig); err != nil {
		return err
	}
	if f.ack[0], err = hashchain.NewAcknowledgmentWalker(st, anchors.InitAck); err != nil {
		return err
	}
	if f.sig[1], err = hashchain.NewSignatureWalker(st, anchors.RespSig); err != nil {
		return err
	}
	if f.ack[1], err = hashchain.NewAcknowledgmentWalker(st, anchors.RespAck); err != nil {
		return err
	}
	r.flows[anchors.Assoc] = f
	r.order = append(r.order, anchors.Assoc)
	return nil
}

// verifySig verifies a signature-chain element for direction d, with the
// same rekey grace-window semantics as core.Endpoint.verifyPeerSig: two
// generations stay live until the next rotation replaces the older one;
// S2/A2 elements never reach these walkers (exchange-pinned verification).
func (f *flow) verifySig(d int, elem []byte, idx uint32) error {
	err := f.sig[d].Verify(elem, idx)
	if err == nil {
		return nil
	}
	if f.prevSig[d] == nil {
		return err
	}
	if f.prevSig[d].Verify(elem, idx) == nil {
		return nil
	}
	return err
}

// verifyAck is verifySig for the acknowledgment chain of direction d.
func (f *flow) verifyAck(d int, elem []byte, idx uint32) error {
	err := f.ack[d].Verify(elem, idx)
	if err == nil {
		return nil
	}
	if f.prevAck[d] == nil {
		return err
	}
	if f.prevAck[d].Verify(elem, idx) == nil {
		return nil
	}
	return err
}

// tokenBucket is a simple rate limiter under injected time.
type tokenBucket struct {
	rate, burst float64
	tokens      float64
	last        time.Time
}

func (b *tokenBucket) take(now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
	} else {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// stepOf maps a wire packet type to its span step.
func stepOf(t packet.Type) uint8 {
	switch t {
	case packet.TypeS1:
		return obs.StepS1
	case packet.TypeA1:
		return obs.StepA1
	case packet.TypeS2:
		return obs.StepS2
	case packet.TypeA2:
		return obs.StepA2
	case packet.TypeHS1, packet.TypeHS2:
		return obs.StepHS
	default:
		return obs.StepNone
	}
}

// Process inspects one datagram and decides its fate. Packets are charged
// against upstream 0's unsolicited-S1 budget; two-port deployments should
// use ProcessFrom.
func (r *Relay) Process(now time.Time, data []byte) Decision {
	r.upstream = 0
	return r.process(now, data)
}

// ProcessFrom is Process with the ingress upstream identified (0 or 1 for a
// two-port relay), so each side's unsolicited-S1 flood budget is accounted
// separately: a flood arriving on one port cannot starve the pass-through
// allowance of legitimate unknown-association traffic on the other.
func (r *Relay) ProcessFrom(now time.Time, upstream int, data []byte) Decision {
	r.upstream = upstream & 1
	return r.process(now, data)
}

func (r *Relay) process(now time.Time, data []byte) Decision {
	r.tnow = now.UnixNano()
	r.spanKey, r.spanMode = 0, 0
	hdr, msg, err := packet.Decode(data)
	if err != nil {
		// Double-wrap so callers can match the relay-level ErrMalformed
		// and still extract the parser's typed *packet.ParseError.
		return r.drop(packet.Header{Type: packet.TypeInvalid}, telemetry.ReasonMalformed, fmt.Errorf("%w: %w", ErrMalformed, err))
	}
	switch m := msg.(type) {
	case *packet.Bundle:
		return r.processBundle(now, hdr, m)
	case *packet.Handshake:
		return r.processHandshake(hdr, m)
	case *packet.S1:
		return r.processS1(now, hdr, m, len(data))
	case *packet.A1:
		return r.processA1(hdr, m)
	case *packet.S2:
		return r.processS2(hdr, m)
	case *packet.A2:
		return r.processA2(hdr, m)
	default:
		return r.drop(hdr, telemetry.ReasonMalformed, ErrMalformed)
	}
}

// drop discards a packet: one Dropped increment, one per-reason increment
// (when the code has a dedicated counter), one trace event. Keeping all
// three in one place is what guarantees counters and traces never disagree.
func (r *Relay) drop(hdr packet.Header, code uint32, reason error) Decision {
	r.tel.Dropped.Inc()
	if c := r.tel.DropCounter(code); c != nil {
		c.Inc()
	}
	r.tracer.Trace(r.tnow, telemetry.TraceRelayDrop, hdr.Assoc, hdr.Seq, code)
	r.spans.Emit(r.tnow, hdr.Assoc, r.spanKey, hdr.Seq, obs.RoleRelay, stepOf(hdr.Type), r.spanMode, obs.VerdictDrop, code)
	return Decision{Verdict: Drop, Reason: reason, Type: hdr.Type}
}

func (r *Relay) forward(hdr packet.Header) Decision {
	r.tel.Forwarded.Inc()
	r.tracer.Trace(r.tnow, telemetry.TraceRelayForward, hdr.Assoc, hdr.Seq, uint32(hdr.Type))
	r.spans.Emit(r.tnow, hdr.Assoc, r.spanKey, hdr.Seq, obs.RoleRelay, stepOf(hdr.Type), r.spanMode, obs.VerdictForward, uint32(hdr.Type))
	return Decision{Verdict: Forward, Type: hdr.Type}
}

// processBundle verifies every sub-packet of a bundle independently,
// forwarding the survivors: a tampered S2 inside a bundle dies here while
// its honest companions travel on (re-framed without it). The codec forbids
// nested bundles, so the recursion is one level deep.
func (r *Relay) processBundle(now time.Time, hdr packet.Header, b *packet.Bundle) Decision {
	dec := Decision{Type: packet.TypeBundle}
	var keep [][]byte
	stripped := false
	for _, raw := range b.Packets {
		sub := r.process(now, raw) // not Process: keep the ingress upstream

		dec.Sub = append(dec.Sub, sub)
		if sub.Verdict == Forward {
			if sub.Rewritten != nil {
				keep = append(keep, sub.Rewritten)
				stripped = true
			} else {
				keep = append(keep, raw)
			}
		} else {
			stripped = true
		}
	}
	if len(keep) == 0 {
		// Every sub-packet died on its own (and was counted there); the
		// emptied bundle frame dies here and is counted too, so the bundle
		// datagram itself never vanishes from the drop accounting.
		d := r.drop(hdr, telemetry.ReasonUnsolicited, core.ErrUnsolicited)
		d.Sub = dec.Sub
		return d
	}
	dec.Verdict = Forward
	if stripped {
		if len(keep) == 1 {
			dec.Rewritten = keep[0]
		} else if re, err := packet.EncodeBundle(hdr.Suite, hdr.Assoc, hdr.Flags, keep); err == nil {
			dec.Rewritten = re
		} else {
			// Re-framing failed; forwarding the original would leak
			// the dropped packets, so fail closed — and counted.
			d := r.drop(hdr, telemetry.ReasonMalformed, err)
			d.Sub = dec.Sub
			return d
		}
	}
	return dec
}

// resolveSuite maps a wire suite ID to an implementation, honoring the
// configured override when its wire ID matches.
func (r *Relay) resolveSuite(id suite.ID) (suite.Suite, error) {
	if r.cfg.SuiteOverride != nil && r.cfg.SuiteOverride.ID() == id {
		return r.cfg.SuiteOverride, nil
	}
	return suite.ByID(id)
}

// dirIndex maps the header's initiator flag to a chain-set index.
func dirIndex(hdr packet.Header) int {
	if hdr.Flags&core.FlagInitiator != 0 {
		return 0
	}
	return 1
}

// processHandshake learns (or refreshes) a flow from an observed handshake.
func (r *Relay) processHandshake(hdr packet.Header, hs *packet.Handshake) Decision {
	r.tel.Handshake.Inc()
	st, err := r.resolveSuite(hdr.Suite)
	if err != nil {
		return r.drop(hdr, telemetry.ReasonMalformed, ErrMalformed)
	}
	if len(hs.SigAnchor) != st.Size() || len(hs.AckAnchor) != st.Size() {
		return r.drop(hdr, telemetry.ReasonMalformed, ErrMalformed)
	}
	if r.cfg.RequireProtected && hs.Scheme == 0 {
		return r.drop(hdr, telemetry.ReasonBadHandshake, fmt.Errorf("%w: unsigned anchors", core.ErrBadHandshake))
	}
	f, ok := r.flows[hdr.Assoc]
	if !ok {
		if len(r.flows) >= r.cfg.MaxFlows {
			r.evictFlow()
		}
		f = &flow{
			assoc:   hdr.Assoc,
			st:      st,
			bucket:  tokenBucket{rate: r.cfg.S1Rate, burst: r.cfg.S1Burst},
			s1Limit: r.cfg.InitialS1Limit,
		}
		f.dirs[0].rx = make(map[uint32]*exchange)
		f.dirs[1].rx = make(map[uint32]*exchange)
		r.flows[hdr.Assoc] = f
		r.order = append(r.order, hdr.Assoc)
	}
	d := dirIndex(hdr)
	if f.sig[d] == nil {
		sw, err1 := hashchain.NewSignatureWalker(st, hs.SigAnchor)
		aw, err2 := hashchain.NewAcknowledgmentWalker(st, hs.AckAnchor)
		if err1 != nil || err2 != nil {
			return r.drop(hdr, telemetry.ReasonMalformed, ErrMalformed)
		}
		f.sig[d], f.ack[d] = sw, aw
	}
	return r.forward(hdr)
}

func (r *Relay) evictFlow() {
	if len(r.order) == 0 {
		return
	}
	old := r.order[0]
	r.order = r.order[1:]
	delete(r.flows, old)
}

// lookup finds the flow for a packet, deciding pass-through vs strict drop
// when it is unknown. The early decision returns by value (decided reports
// whether it is meaningful): a pointer here would force a heap allocation
// per unknown-association packet, which is exactly the flood path.
func (r *Relay) lookup(hdr packet.Header) (f *flow, early Decision, decided bool) {
	f, ok := r.flows[hdr.Assoc]
	if ok && f.sig[dirIndex(hdr)] != nil {
		return f, Decision{}, false
	}
	r.tel.Unknown.Inc()
	if r.cfg.Strict {
		return nil, r.drop(hdr, telemetry.ReasonStrictPolicy, ErrStrictPolicy), true
	}
	return nil, r.forward(hdr), true
}

// processS1 verifies and buffers a pre-signature announcement.
func (r *Relay) processS1(now time.Time, hdr packet.Header, s1 *packet.S1, size int) Decision {
	f, known := r.flows[hdr.Assoc]
	if !known || f.sig[dirIndex(hdr)] == nil {
		// Unknown association: the per-flow bucket below cannot help — an
		// attacker minting a fresh association ID per packet would mint a
		// fresh bucket per packet — so pass-through S1s draw from a shared
		// per-upstream budget instead (§3.5 rate limiting).
		r.tel.Unknown.Inc()
		if r.cfg.Strict {
			return r.drop(hdr, telemetry.ReasonStrictPolicy, ErrStrictPolicy)
		}
		if !r.unsol[r.upstream].take(now) {
			return r.drop(hdr, telemetry.ReasonS1RateLimit, ErrUnsolRateLimit)
		}
		return r.forward(hdr)
	}
	if !f.bucket.take(now) {
		return r.drop(hdr, telemetry.ReasonRateLimited, ErrRateLimited)
	}
	if f.s1Limit > 0 && size > f.s1Limit {
		return r.drop(hdr, telemetry.ReasonOversized, ErrOversizedS1)
	}
	d := dirIndex(hdr)
	ds := &f.dirs[d]
	if dup, ok := ds.rx[hdr.Seq]; ok {
		// Retransmitted S1: already buffered, just forward.
		r.spanKey, r.spanMode = obs.Key(dup.auth), uint8(dup.mode)
		return r.forward(hdr)
	}
	if s1.AuthIdx%2 != 1 || s1.KeyIdx != s1.AuthIdx+1 {
		return r.drop(hdr, telemetry.ReasonBadElement, core.ErrBadAuthElement)
	}
	if err := f.verifySig(d, s1.Auth, s1.AuthIdx); err != nil {
		return r.drop(hdr, telemetry.ReasonBadElement, fmt.Errorf("%w: %v", core.ErrBadAuthElement, err))
	}
	r.spanKey, r.spanMode = obs.Key(s1.Auth), uint8(s1.Mode)
	x := &exchange{mode: s1.Mode, keyIdx: s1.KeyIdx, auth: append([]byte(nil), s1.Auth...)}
	var batch int
	switch s1.Mode {
	case packet.ModeBase, packet.ModeC:
		x.macs = s1.MACs
		batch = len(s1.MACs)
	case packet.ModeM:
		x.root = s1.Root
		x.leafCount = int(s1.LeafCount)
		batch = x.leafCount
	case packet.ModeCM:
		x.roots = s1.Roots
		x.leafCount = int(s1.LeafCount)
		batch = x.leafCount
		sub := core.CMSubSize(batch, len(s1.Roots))
		if (batch+sub-1)/sub != len(s1.Roots) {
			return r.drop(hdr, telemetry.ReasonMalformed, ErrMalformed)
		}
	default:
		return r.drop(hdr, telemetry.ReasonMalformed, ErrMalformed)
	}
	x.verified = make([]bool, batch)
	ds.rx[hdr.Seq] = x
	ds.order = append(ds.order, hdr.Seq)
	for len(ds.order) > r.cfg.MaxExchanges {
		old := ds.order[0]
		ds.order = ds.order[1:]
		delete(ds.rx, old)
	}
	return r.forward(hdr)
}

// processA1 verifies the acknowledgment element and buffers pre-(n)ack
// material against the S1 exchange it answers.
func (r *Relay) processA1(hdr packet.Header, a1 *packet.A1) Decision {
	f, early, decided := r.lookup(hdr)
	if decided {
		return early //alpha:drop-ok lookup counted the drop when it built the early verdict
	}
	d := dirIndex(hdr) // direction of the A1 sender = the exchange's verifier
	if a1.AuthIdx%2 != 1 || a1.KeyIdx != a1.AuthIdx+1 {
		return r.drop(hdr, telemetry.ReasonBadElement, core.ErrBadAuthElement)
	}
	if err := f.verifyAck(d, a1.Auth, a1.AuthIdx); err != nil {
		return r.drop(hdr, telemetry.ReasonBadElement, fmt.Errorf("%w: %v", core.ErrBadAuthElement, err))
	}
	// The exchange was opened by the S1 from the opposite direction. A
	// relay may legitimately have missed that S1 (asymmetric routes,
	// joining mid-association): the A1 itself is chain-authenticated, so
	// it is forwarded; only its pre-(n)ack material goes unbuffered.
	x, ok := f.dirs[1-d].rx[hdr.Seq]
	if !ok {
		return r.forward(hdr)
	}
	r.spanKey, r.spanMode = obs.Key(x.auth), uint8(x.mode)
	if x.preAck == nil && x.amtRoot == nil {
		x.ackAuth = append([]byte(nil), a1.Auth...)
		x.ackKeyIdx = a1.KeyIdx
		x.preAck = a1.PreAck
		x.preNack = a1.PreNack
		x.amtRoot = a1.AMTRoot
		x.amtLeaves = int(a1.AMTLeaves)
	}
	return r.forward(hdr)
}

// processS2 is the heart of hop-by-hop filtering: the payload must match a
// buffered pre-signature or it dies here.
// processS2 is the relay's per-payload hot path: every data-bearing packet
// of every flow funnels through here.
//
//alpha:hotpath
func (r *Relay) processS2(hdr packet.Header, s2 *packet.S2) Decision {
	f, early, decided := r.lookup(hdr)
	if decided {
		return early //alpha:drop-ok lookup counted the drop when it built the early verdict
	}
	d := dirIndex(hdr)
	x, ok := f.dirs[d].rx[hdr.Seq]
	if !ok {
		return r.drop(hdr, telemetry.ReasonUnsolicited, core.ErrUnsolicited)
	}
	r.spanKey, r.spanMode = obs.Key(x.auth), uint8(x.mode)
	if s2.Mode != x.mode || s2.KeyIdx != x.keyIdx || int(s2.MsgIndex) >= len(x.verified) {
		return r.drop(hdr, telemetry.ReasonUnsolicited, core.ErrUnsolicited)
	}
	if x.key == nil {
		if !hashchain.VerifyLink(f.st, hashchain.TagS1, hashchain.TagS2, x.auth, s2.Key, s2.KeyIdx) {
			return r.drop(hdr, telemetry.ReasonBadElement, core.ErrBadAuthElement)
		}
		x.key = append([]byte(nil), s2.Key...) //alpha:alloc-ok one copy per exchange, not per packet
	} else if !suite.Equal(x.key, s2.Key) {
		return r.drop(hdr, telemetry.ReasonBadElement, core.ErrBadAuthElement)
	}
	valid := false
	switch x.mode {
	case packet.ModeBase, packet.ModeC:
		want := x.macs[s2.MsgIndex]
		f.macIn = core.AppendMACInput(f.macIn[:0], hdr.Assoc, hdr.Seq, s2.MsgIndex, s2.Payload)
		f.parts[0] = f.macIn
		f.macOut = f.st.MACInto(f.macOut[:0], s2.Key, f.parts[:1]...)
		valid = suite.Equal(want, f.macOut)
	case packet.ModeM:
		valid = int(s2.LeafCount) == x.leafCount &&
			merkle.Verify(f.st, s2.Key, x.root, core.MerkleLeafInput(s2.Payload), int(s2.MsgIndex), x.leafCount, s2.Proof)
	case packet.ModeCM:
		if int(s2.LeafCount) == x.leafCount {
			if root, leaf, leaves, ok := core.CMLocate(int(s2.MsgIndex), x.leafCount, len(x.roots)); ok && root < len(x.roots) {
				valid = merkle.Verify(f.st, s2.Key, x.roots[root], core.MerkleLeafInput(s2.Payload), leaf, leaves, s2.Proof)
			}
		}
	}
	if !valid {
		if x.mode == packet.ModeM || x.mode == packet.ModeCM {
			return r.drop(hdr, telemetry.ReasonBadPayload, core.ErrBadProof)
		}
		return r.drop(hdr, telemetry.ReasonBadPayload, core.ErrBadMAC)
	}
	x.verified[s2.MsgIndex] = true
	r.tracer.Trace(r.tnow, telemetry.TraceS2Verified, hdr.Assoc, hdr.Seq, s2.MsgIndex)
	dec := r.forward(hdr)
	dec.Extracted = s2.Payload
	r.tel.ExtractedBytes.Add(uint64(len(s2.Payload)))
	r.tel.ExtractedSize.Observe(int64(len(s2.Payload)))
	// Verified in-band rekey announcements rotate this direction's chain
	// walkers, exactly as endpoints do: the new anchors are authenticated
	// by the old chain. The old walkers stay as a one-shot fallback in
	// case the announcing host aborts the rotation (lost ack); the flow's
	// next verified S1 settles which generation is live (see processS1).
	if core.IsRekeyPayload(s2.Payload) {
		if p, ok := core.DecodeRekey(s2.Payload, f.st.Size()); ok { //alpha:alloc-ok rekey happens once per chain lifetime
			if sig, ack, err := core.UpdateAnchors(f.st, p); err == nil { //alpha:alloc-ok rekey happens once per chain lifetime
				if f.prevSig[d] == nil || f.sig[d].Index() > 0 || f.ack[d].Index() > 0 {
					f.prevSig[d], f.prevAck[d] = f.sig[d], f.ack[d]
				}
				f.sig[d], f.ack[d] = sig, ack
			}
		}
	}
	return dec
}

// processA2 verifies a pre-(n)ack opening against buffered A1 material.
//
//alpha:hotpath
func (r *Relay) processA2(hdr packet.Header, a2 *packet.A2) Decision {
	f, early, decided := r.lookup(hdr)
	if decided {
		return early //alpha:drop-ok lookup counted the drop when it built the early verdict
	}
	d := dirIndex(hdr)
	x, ok := f.dirs[1-d].rx[hdr.Seq]
	if !ok || (x.preAck == nil && x.amtRoot == nil) {
		// Never saw this exchange's S1 or A1 (asymmetric routes):
		// the A2 cannot influence on-path state here, but it remains
		// end-to-end verifiable, so forward it.
		if ok {
			r.spanKey, r.spanMode = obs.Key(x.auth), uint8(x.mode)
		}
		return r.forward(hdr)
	}
	r.spanKey, r.spanMode = obs.Key(x.auth), uint8(x.mode)
	if a2.KeyIdx != x.ackKeyIdx {
		return r.drop(hdr, telemetry.ReasonBadAck, core.ErrBadAck)
	}
	if x.ackAuth == nil || !hashchain.VerifyLink(f.st, hashchain.TagA1, hashchain.TagA2, x.ackAuth, a2.Key, a2.KeyIdx) {
		return r.drop(hdr, telemetry.ReasonBadElement, core.ErrBadAuthElement)
	}
	valid := false
	switch {
	case x.preAck != nil:
		if a2.MsgIndex == 0 {
			if a2.Ack {
				f.macOut = core.AppendPreAckDigest(f.st, f.macOut[:0], a2.Key, a2.Secret)
				valid = suite.Equal(x.preAck, f.macOut)
			} else {
				f.macOut = core.AppendPreNackDigest(f.st, f.macOut[:0], a2.Key, a2.Secret)
				valid = suite.Equal(x.preNack, f.macOut)
			}
		}
	case x.amtRoot != nil:
		o := &merkle.Opening{Index: a2.MsgIndex, Ack: a2.Ack, Secret: a2.Secret, Proof: a2.Proof, Other: a2.Other}
		valid = merkle.VerifyOpening(f.st, a2.Key, x.amtRoot, x.amtLeaves, o)
	}
	if !valid {
		return r.drop(hdr, telemetry.ReasonBadAck, core.ErrBadAck)
	}
	dec := r.forward(hdr)
	dec.AckSeen = true
	dec.AckPositive = a2.Ack
	dec.AckIndex = a2.MsgIndex
	// Adaptive S1 size limit: verified progress earns a larger budget
	// (§3.5: "relays should initially limit and later increase the
	// maximum size of S1 packets per sender").
	if f.s1Limit > 0 && a2.Ack {
		f.s1Limit *= 2
		if f.s1Limit > r.cfg.MaxS1Limit {
			f.s1Limit = r.cfg.MaxS1Limit
		}
	}
	return dec
}
