package relay

import (
	"errors"
	"testing"
	"time"

	"alpha/internal/packet"
	"alpha/internal/telemetry"
)

// forgeUnknownS1 builds a structurally valid S1 on an association the relay
// has never seen a handshake for. The real exchange completes directly
// between the endpoints (bypassing any relay under test) so the sender is
// free to produce another S1 on the next call.
func forgeUnknownS1(t *testing.T, p *pair, assoc uint64) []byte {
	t.Helper()
	if _, err := p.a.Send(p.now, []byte("m")); err != nil {
		t.Fatal(err)
	}
	p.a.Flush(p.now)
	var forged []byte
	for round := 0; round < 20; round++ {
		p.now = p.now.Add(5 * time.Millisecond)
		outA, _ := p.a.Poll(p.now)
		outB, _ := p.b.Poll(p.now)
		if len(outA) == 0 && len(outB) == 0 {
			break
		}
		for _, raw := range outA {
			if forged == nil {
				if hdr, msg, err := packet.Decode(raw); err == nil && hdr.Type == packet.TypeS1 {
					hdr.Assoc = assoc
					re, err := packet.Encode(hdr, msg)
					if err != nil {
						t.Fatal(err)
					}
					forged = re
				}
			}
			if _, err := p.b.Handle(p.now, raw); err != nil {
				t.Fatal(err)
			}
		}
		for _, raw := range outB {
			if _, err := p.a.Handle(p.now, raw); err != nil {
				t.Fatal(err)
			}
		}
	}
	if forged == nil {
		t.Fatal("no S1 produced")
	}
	return forged
}

func TestRelayUnsolicitedS1RateLimit(t *testing.T) {
	p := newPair(t, baseCfg(), Config{})
	victim := New(Config{UnsolicitedS1Rate: 1, UnsolicitedS1Burst: 4})
	limited, forwarded := 0, 0
	for i := 0; i < 20; i++ {
		// Fresh association ID per packet: the attacker pattern a per-flow
		// bucket cannot stop.
		raw := forgeUnknownS1(t, p, 0xABC0+uint64(i))
		d := victim.Process(p.now, raw)
		switch {
		case d.Verdict == Forward:
			forwarded++
		case errors.Is(d.Reason, ErrUnsolRateLimit):
			limited++
		default:
			t.Fatalf("unexpected decision: %+v", d)
		}
	}
	if forwarded != 4 {
		t.Fatalf("forwarded %d unsolicited S1s, want the burst of 4", forwarded)
	}
	if limited != 16 {
		t.Fatalf("limited %d, want 16", limited)
	}
	st := victim.Stats()
	if st.S1RateLimited != 16 || st.Dropped != 16 {
		t.Fatalf("stats: %+v", st)
	}
	if got := victim.Telemetry().S1RateLimited.Load(); got != 16 {
		t.Fatalf("telemetry drop_s1_ratelimit %d", got)
	}

	// The bucket refills with time: after a second another S1 passes.
	d := victim.Process(p.now.Add(time.Second), forgeUnknownS1(t, p, 0xF00))
	if d.Verdict != Forward {
		t.Fatalf("bucket never refilled: %+v", d)
	}
}

func TestRelayUnsolicitedLimitPerUpstream(t *testing.T) {
	p := newPair(t, baseCfg(), Config{})
	victim := New(Config{UnsolicitedS1Rate: 1, UnsolicitedS1Burst: 2})
	// Exhaust upstream 0's budget.
	for i := 0; i < 6; i++ {
		victim.ProcessFrom(p.now, 0, forgeUnknownS1(t, p, 0x100+uint64(i)))
	}
	if victim.ProcessFrom(p.now, 0, forgeUnknownS1(t, p, 0x200)).Verdict != Drop {
		t.Fatal("upstream 0 budget not exhausted")
	}
	// Upstream 1 still has its own burst.
	if d := victim.ProcessFrom(p.now, 1, forgeUnknownS1(t, p, 0x300)); d.Verdict != Forward {
		t.Fatalf("flood on upstream 0 starved upstream 1: %+v", d)
	}
}

func TestRelayKnownFlowUnaffectedByUnsolicitedLimit(t *testing.T) {
	// The per-upstream bucket only guards pass-through S1s: buffered
	// pre-signature S1/S2 matching for observed flows runs at full rate
	// even with an aggressive unsolicited limit.
	p := newPair(t, baseCfg(), Config{UnsolicitedS1Rate: 0.001, UnsolicitedS1Burst: 1})
	const total = 12
	for i := 0; i < total; i++ {
		p.send([]byte{byte(i)})
	}
	st := p.r.Stats()
	if st.S1RateLimited != 0 || st.Dropped != 0 {
		t.Fatalf("known-flow traffic hit the unsolicited limiter: %+v", st)
	}
	if int(st.ExtractedBytes) != total {
		t.Fatalf("extracted %d bytes, want %d (S2 matching degraded)", st.ExtractedBytes, total)
	}
}

func TestRelayStrictPolicyBeatsRateLimit(t *testing.T) {
	p := newPair(t, baseCfg(), Config{})
	strict := New(Config{Strict: true, UnsolicitedS1Rate: 100, UnsolicitedS1Burst: 100})
	d := strict.Process(p.now, forgeUnknownS1(t, p, 0x999))
	if d.Verdict != Drop || !errors.Is(d.Reason, ErrStrictPolicy) {
		t.Fatalf("strict relay should drop before rate limiting: %+v", d)
	}
	if strict.Stats().S1RateLimited != 0 {
		t.Fatal("strict drop charged the rate limiter")
	}
}

// nameCollector records counter names reported by a Walk.
type nameCollector map[string]uint64

func (c nameCollector) Counter(name string, value uint64)                    { c[name] = value }
func (c nameCollector) Gauge(name string, value int64)                       {}
func (c nameCollector) Histogram(name string, s telemetry.HistogramSnapshot) {}

func TestRelayS1RateLimitReasonExported(t *testing.T) {
	m := &telemetry.RelayMetrics{}
	m.Init()
	if c := m.DropCounter(telemetry.ReasonS1RateLimit); c != &m.S1RateLimited {
		t.Fatal("ReasonS1RateLimit not routed to S1RateLimited")
	}
	got := nameCollector{}
	m.Walk(got)
	if _, ok := got["drop_s1_ratelimit"]; !ok {
		t.Fatal("drop_s1_ratelimit not exported by Walk")
	}
}
