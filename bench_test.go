// Benchmarks mirroring the paper's evaluation, one benchmark family per
// table/figure. `go test -bench=. -benchmem` regenerates the raw numbers;
// cmd/alphabench formats them as the paper's tables with the analytic
// models alongside.
package alpha

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"alpha/internal/analytic"
	"alpha/internal/baseline"
	"alpha/internal/core"
	"alpha/internal/hashchain"
	"alpha/internal/merkle"
	"alpha/internal/obs"
	"alpha/internal/packet"
	"alpha/internal/relay"
	"alpha/internal/suite"
)

// benchPair is a pre-established endpoint pair with manual pumping.
type benchPair struct {
	a, b *core.Endpoint
	now  time.Time
}

func newBenchPair(b *testing.B, cfg core.Config) *benchPair {
	b.Helper()
	ea, err := core.NewEndpoint(cfg)
	if err != nil {
		b.Fatal(err)
	}
	eb, err := core.NewEndpoint(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := &benchPair{a: ea, b: eb, now: time.Unix(1_700_000_000, 0)}
	hs1, err := ea.StartHandshake(p.now)
	if err != nil {
		b.Fatal(err)
	}
	p.deliver(eb, hs1)
	p.pump(10)
	if !ea.Established() || !eb.Established() {
		b.Fatal("bench handshake failed")
	}
	return p
}

func (p *benchPair) deliver(dst *core.Endpoint, raw []byte) {
	if _, err := dst.Handle(p.now, raw); err != nil {
		panic(err)
	}
}

func (p *benchPair) pump(rounds int) {
	for i := 0; i < rounds; i++ {
		p.now = p.now.Add(5 * time.Millisecond)
		outA, _ := p.a.Poll(p.now)
		outB, _ := p.b.Poll(p.now)
		if len(outA) == 0 && len(outB) == 0 {
			return
		}
		for _, raw := range outA {
			p.deliver(p.b, raw)
		}
		for _, raw := range outB {
			p.deliver(p.a, raw)
		}
	}
}

// exchange pushes one batch through a full signature exchange.
func (p *benchPair) exchange(b *testing.B, msgs [][]byte) {
	for _, m := range msgs {
		if _, err := p.a.Send(p.now, m); err != nil {
			b.Fatal(err)
		}
	}
	p.a.Flush(p.now)
	p.pump(20)
}

// BenchmarkTable1 measures full protected exchanges per mode: the cost that
// Table 1 decomposes into hash operations.
func BenchmarkTable1(b *testing.B) {
	cases := []struct {
		name  string
		mode  packet.Mode
		batch int
	}{
		{"ALPHA/n=1", packet.ModeBase, 1},
		{"ALPHA-C/n=16", packet.ModeC, 16},
		{"ALPHA-M/n=16", packet.ModeM, 16},
		{"ALPHA-CM/n=16", packet.ModeCM, 16},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := core.Config{Mode: c.mode, Reliable: true, ChainLen: 2 * (b.N + 16), BatchSize: c.batch, FlushDelay: -1}
			p := newBenchPair(b, cfg)
			msgs := make([][]byte, c.batch)
			for i := range msgs {
				msgs[i] = bytes.Repeat([]byte{byte(i)}, 512)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.exchange(b, msgs)
			}
			b.ReportMetric(float64(b.N*c.batch), "msgs")
		})
	}
}

// BenchmarkTable2 reports the live buffer bytes behind Table 2's columns.
func BenchmarkTable2(b *testing.B) {
	for _, mode := range []packet.Mode{packet.ModeC, packet.ModeM} {
		name := packet.Mode(mode).String()
		b.Run(fmt.Sprintf("%s/n=64", name), func(b *testing.B) {
			b.ReportAllocs()
			var verifierBytes int
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Mode: mode, ChainLen: 64, BatchSize: 64, FlushDelay: -1, MaxOutstanding: 1}
				p := newBenchPair(b, cfg)
				for j := 0; j < 64; j++ {
					if _, err := p.a.Send(p.now, bytes.Repeat([]byte{byte(j)}, 1024)); err != nil {
						b.Fatal(err)
					}
				}
				p.a.Flush(p.now)
				// Deliver only the S1 so buffers are at their peak.
				s1, _ := p.a.Poll(p.now)
				for _, raw := range s1 {
					if hdr, _, err := packet.Decode(raw); err == nil && hdr.Type == packet.TypeS1 {
						p.deliver(p.b, raw)
					}
				}
				sig, _ := p.b.RxBufferedBytes()
				verifierBytes = sig
			}
			b.ReportMetric(float64(verifierBytes), "verifier-bytes")
		})
	}
}

// BenchmarkTable3 reports the acknowledgment-state bytes behind Table 3.
func BenchmarkTable3(b *testing.B) {
	for _, n := range []int{1, 64} {
		b.Run(fmt.Sprintf("reliable/n=%d", n), func(b *testing.B) {
			mode := packet.ModeBase
			if n > 1 {
				mode = packet.ModeC
			}
			b.ReportAllocs()
			var ackBytes int
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Mode: mode, Reliable: true, ChainLen: 64, BatchSize: n, FlushDelay: -1, MaxOutstanding: 1}
				p := newBenchPair(b, cfg)
				for j := 0; j < n; j++ {
					if _, err := p.a.Send(p.now, []byte("x")); err != nil {
						b.Fatal(err)
					}
				}
				p.a.Flush(p.now)
				s1, _ := p.a.Poll(p.now)
				for _, raw := range s1 {
					p.deliver(p.b, raw)
				}
				p.b.Poll(p.now) // generates the A1 + pre-(n)ack state
				_, ackBytes = p.b.RxBufferedBytes()
			}
			b.ReportMetric(float64(ackBytes), "verifier-ack-bytes")
		})
	}
}

// BenchmarkTable4 times the individual signature steps and the asymmetric
// baselines of Table 4.
func BenchmarkTable4(b *testing.B) {
	b.Run("ALPHA/full-signature", func(b *testing.B) {
		cfg := core.Config{Mode: packet.ModeBase, Reliable: true, ChainLen: 2 * (b.N + 8), FlushDelay: -1}
		p := newBenchPair(b, cfg)
		payload := bytes.Repeat([]byte{0x5A}, 512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.exchange(b, [][]byte{payload})
		}
	})
	b.Run("SHA1/20B", func(b *testing.B) {
		s := suite.SHA1()
		in := bytes.Repeat([]byte{1}, 20)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Hash(in)
		}
	})
	rsa, err := baseline.NewRSASigner(1024)
	if err != nil {
		b.Fatal(err)
	}
	msg := bytes.Repeat([]byte{2}, 512)
	sig, _ := rsa.Sign(msg)
	b.Run("RSA1024/sign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rsa.Sign(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RSA1024/verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rsa.Verify(msg, sig); err != nil {
				b.Fatal(err)
			}
		}
	})
	dsa, err := baseline.NewDSASigner()
	if err != nil {
		b.Fatal(err)
	}
	dsig, _ := dsa.Sign(msg)
	b.Run("DSA1024/sign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dsa.Sign(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DSA1024/verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := dsa.Verify(msg, dsig); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable5 times digests over the paper's two input sizes per suite.
func BenchmarkTable5(b *testing.B) {
	for _, s := range []suite.Suite{suite.SHA1(), suite.SHA256(), suite.MMO()} {
		for _, size := range []int{20, 1024} {
			in := bytes.Repeat([]byte{3}, size)
			b.Run(fmt.Sprintf("%s/%dB", s.Name(), size), func(b *testing.B) {
				b.SetBytes(int64(size))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s.Hash(in)
				}
			})
		}
	}
}

// BenchmarkTable6 times ALPHA-M S2 verification across tree sizes: the
// "Processing" column of Table 6, measured on the real verifier path.
func BenchmarkTable6(b *testing.B) {
	s := suite.SHA1()
	for _, leaves := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			key := s.Hash([]byte("element"))
			msgs := make([][]byte, leaves)
			payload := analytic.PerPacketPayload(leaves, 1024, s.Size())
			for i := range msgs {
				msgs[i] = bytes.Repeat([]byte{byte(i)}, payload)
			}
			tree, err := merkle.Build(s, key, msgs)
			if err != nil {
				b.Fatal(err)
			}
			proofs := make([][][]byte, leaves)
			for i := range proofs {
				if proofs[i], err = tree.Proof(i); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % leaves
				if !merkle.Verify(s, key, tree.Root(), msgs[j], j, leaves, proofs[j]) {
					b.Fatal("verify failed")
				}
			}
		})
	}
}

// BenchmarkFig5 exercises the machinery behind Figure 5: building the tree
// and producing every proof for a batch (signer side of one S1's worth of
// data).
func BenchmarkFig5(b *testing.B) {
	s := suite.SHA1()
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			key := s.Hash([]byte("k"))
			msgs := make([][]byte, n)
			for i := range msgs {
				msgs[i] = bytes.Repeat([]byte{byte(i)}, 256)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree, err := merkle.Build(s, key, msgs)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					if _, err := tree.Proof(j); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(analytic.STotal(n, 1280, s.Size())), "signed-bytes-per-S1")
		})
	}
}

// BenchmarkFig6 reports Figure 6's overhead ratio as a benchmark metric
// while timing the analytic sweep itself.
func BenchmarkFig6(b *testing.B) {
	for _, spacket := range []int{128, 512, 1280} {
		b.Run(fmt.Sprintf("packet=%dB", spacket), func(b *testing.B) {
			b.ReportAllocs()
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio = analytic.OverheadRatio(1024, spacket, 20)
			}
			b.ReportMetric(ratio, "bytes-per-signed-byte@n=1024")
		})
	}
}

// BenchmarkWMNRelayThroughput measures a relay's verifiable S2 throughput —
// the quantity §4.1.2 bounds at ~20 Mbit/s for 2008 mesh routers. One
// exchange's S2 packets are pre-captured and replayed through the real
// relay verification path; b.SetBytes makes `go test -bench` report MB/s.
func BenchmarkWMNRelayThroughput(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode packet.Mode
	}{
		{"ALPHA-C", packet.ModeC},
		{"ALPHA-M", packet.ModeM},
	} {
		b.Run(tc.name, func(b *testing.B) {
			const batch = 20
			const payloadSize = 1024
			cfg := core.Config{Mode: tc.mode, ChainLen: 2 * (b.N/batch + 8), BatchSize: batch, FlushDelay: -1}
			p := newBenchPair(b, cfg)
			r := relay.New(relay.Config{})
			// Let the relay learn the association from a replayed
			// handshake... simpler: re-provision is not possible here,
			// so replay the S1/A1 exchange through it after seeding
			// via observed packets is not available either. Instead,
			// run the protocol THROUGH the relay.
			payload := bytes.Repeat([]byte{0x77}, payloadSize)
			// Prime: relay must observe the handshake; newBenchPair
			// already completed it privately, so rebuild endpoints
			// with the relay in the loop.
			a, err := core.NewEndpoint(cfg)
			if err != nil {
				b.Fatal(err)
			}
			bb, err := core.NewEndpoint(cfg)
			if err != nil {
				b.Fatal(err)
			}
			now := p.now
			through := func(dst *core.Endpoint, raw []byte) {
				if d := r.Process(now, raw); d.Verdict != relay.Forward {
					b.Fatalf("relay dropped: %v", d.Reason)
				}
				dst.Handle(now, raw)
			}
			hs1, err := a.StartHandshake(now)
			if err != nil {
				b.Fatal(err)
			}
			through(bb, hs1)
			out, _ := bb.Poll(now)
			for _, raw := range out {
				through(a, raw)
			}
			if !a.Established() {
				b.Fatal("bench handshake failed")
			}
			b.SetBytes(payloadSize)
			b.ReportAllocs()
			b.ResetTimer()
			verified := 0
			for verified < b.N {
				b.StopTimer()
				for i := 0; i < batch; i++ {
					if _, err := a.Send(now, payload); err != nil {
						b.Fatal(err)
					}
				}
				a.Flush(now)
				s1, _ := a.Poll(now)
				for _, raw := range s1 {
					through(bb, raw)
				}
				a1, _ := bb.Poll(now)
				for _, raw := range a1 {
					through(a, raw)
				}
				s2s, _ := a.Poll(now)
				b.StartTimer()
				// Timed region: relay verification of the S2 stream.
				for _, raw := range s2s {
					if d := r.Process(now, raw); d.Verdict != relay.Forward {
						b.Fatalf("relay dropped S2: %v", d.Reason)
					}
					verified++
				}
				b.StopTimer()
				for _, raw := range s2s {
					bb.Handle(now, raw)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkRelaySpans measures the relay verification path with hop-by-hop
// exchange tracing off and on — the pair BENCH_obs.json records to hold the
// span emit path to its <=3% throughput budget. Same replay harness as
// BenchmarkWMNRelayThroughput, ALPHA-C only (the mode with the hottest
// per-packet relay work).
func BenchmarkRelaySpans(b *testing.B) {
	for _, tc := range []struct {
		name string
		ring *obs.SpanRing
	}{
		{"tracing=off", nil},
		{"tracing=on", obs.NewSpanRing(8192)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			const batch = 20
			const payloadSize = 1024
			cfg := core.Config{Mode: packet.ModeC, ChainLen: 2 * (b.N/batch + 8), BatchSize: batch, FlushDelay: -1}
			r := relay.New(relay.Config{Spans: tc.ring})
			payload := bytes.Repeat([]byte{0x77}, payloadSize)
			a, err := core.NewEndpoint(cfg)
			if err != nil {
				b.Fatal(err)
			}
			bb, err := core.NewEndpoint(cfg)
			if err != nil {
				b.Fatal(err)
			}
			now := time.Now()
			through := func(dst *core.Endpoint, raw []byte) {
				if d := r.Process(now, raw); d.Verdict != relay.Forward {
					b.Fatalf("relay dropped: %v", d.Reason)
				}
				dst.Handle(now, raw)
			}
			hs1, err := a.StartHandshake(now)
			if err != nil {
				b.Fatal(err)
			}
			through(bb, hs1)
			out, _ := bb.Poll(now)
			for _, raw := range out {
				through(a, raw)
			}
			if !a.Established() {
				b.Fatal("bench handshake failed")
			}
			b.SetBytes(payloadSize)
			b.ReportAllocs()
			b.ResetTimer()
			verified := 0
			for verified < b.N {
				b.StopTimer()
				for i := 0; i < batch; i++ {
					if _, err := a.Send(now, payload); err != nil {
						b.Fatal(err)
					}
				}
				a.Flush(now)
				s1, _ := a.Poll(now)
				for _, raw := range s1 {
					through(bb, raw)
				}
				a1, _ := bb.Poll(now)
				for _, raw := range a1 {
					through(a, raw)
				}
				s2s, _ := a.Poll(now)
				b.StartTimer()
				for _, raw := range s2s {
					if d := r.Process(now, raw); d.Verdict != relay.Forward {
						b.Fatalf("relay dropped S2: %v", d.Reason)
					}
					verified++
				}
				b.StopTimer()
				for _, raw := range s2s {
					bb.Handle(now, raw)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkSuiteOps measures the primitive operations underneath every
// protocol path — one digest, one MAC, one hash-chain step — through the
// *Into APIs with a caller-owned destination buffer. The interesting column
// is allocs/op: Hash and chain-step must be zero for SHA-1 and SHA-256.
// (MMO re-keys AES on every block, so its allocations are inherent to the
// construction, not to the call path.)
func BenchmarkSuiteOps(b *testing.B) {
	for _, s := range []suite.Suite{suite.SHA1(), suite.SHA256(), suite.MMO()} {
		in := bytes.Repeat([]byte{5}, 20)
		key := bytes.Repeat([]byte{6}, s.Size())
		b.Run(s.Name()+"/Hash", func(b *testing.B) {
			dst := make([]byte, 0, s.Size())
			var parts [1][]byte
			parts[0] = in
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = s.HashInto(dst[:0], parts[:]...)
			}
		})
		b.Run(s.Name()+"/MAC", func(b *testing.B) {
			dst := make([]byte, 0, s.Size())
			var parts [1][]byte
			parts[0] = in
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = s.MACInto(dst[:0], key, parts[:]...)
			}
		})
		b.Run(s.Name()+"/chain-step", func(b *testing.B) {
			tag := hashchain.TagS1
			cur := append(make([]byte, 0, s.Size()), key...)
			scratch := make([]byte, 0, s.Size())
			var parts [2][]byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				parts[0] = tag
				parts[1] = cur
				scratch = s.HashInto(scratch[:0], parts[:]...)
				cur, scratch = scratch, cur
			}
		})
	}
}

// BenchmarkWSN measures the MMO hash on the paper's two WSN input sizes
// (§4.1.3: 16 B and 84 B).
func BenchmarkWSN(b *testing.B) {
	s := suite.MMO()
	for _, size := range []int{16, 84} {
		in := bytes.Repeat([]byte{4}, size)
		b.Run(fmt.Sprintf("MMO/%dB", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Hash(in)
			}
		})
	}
	b.Run("ALPHA-C/n=5/100B-messages", func(b *testing.B) {
		cfg := core.Config{Suite: s, Mode: packet.ModeC, Reliable: true, ChainLen: 2 * (b.N + 8), BatchSize: 5, FlushDelay: -1}
		p := newBenchPair(b, cfg)
		msgs := make([][]byte, 5)
		for i := range msgs {
			msgs[i] = bytes.Repeat([]byte{byte(i)}, 100)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.exchange(b, msgs)
		}
		b.ReportMetric(float64(5*b.N), "msgs")
	})
}
