// Package alpha implements ALPHA, the Adaptive and Lightweight Protocol for
// Hop-by-hop Authentication (Heer, Götz, Garcia Morchon, Wehrle; ACM CoNEXT
// 2008): end-to-end and hop-by-hop integrity protection for unicast traffic
// in multi-hop networks, built entirely from hash chains and hash trees.
//
// # Protocol in one paragraph
//
// Two hosts exchange hash chain anchors once, during a handshake. To send a
// protected message m, the signer first announces a MAC of m keyed with its
// *next undisclosed* chain element (packet S1); the verifier acknowledges
// with an element of its own acknowledgment chain (A1); only then does the
// signer reveal m and the MAC key (S2). Every forwarding node that watched
// the S1 can verify the S2 before spending energy on it, so forged,
// tampered and unsolicited packets are dropped at the first honest hop.
// Three operational modes trade memory, CPU and bandwidth: the base
// protocol (one message per round trip), ALPHA-C (n cumulative
// pre-signatures per S1), and ALPHA-M (one Merkle tree root per S1 with
// per-packet proofs). An optional reliable mode adds verifiable
// pre-acknowledgments (and acknowledgment Merkle trees for batches).
//
// # Package layout
//
// This root package is a facade over the implementation packages; it
// re-exports everything a downstream user needs:
//
//   - Endpoint: the sans-IO protocol engine (one per association end).
//   - Relay: hop-by-hop verification for forwarding nodes.
//   - Conn / DialUDP / ListenUDP: run an association over real sockets.
//   - Network and friends: a deterministic multi-hop network simulator
//     for tests and experiments.
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package alpha

import (
	"net"
	"time"

	"alpha/internal/adaptive"
	"alpha/internal/core"
	"alpha/internal/netsim"
	"alpha/internal/packet"
	"alpha/internal/relay"
	"alpha/internal/suite"
	"alpha/internal/telemetry"
	"alpha/internal/udptransport"
)

// Mode selects the operational mode of an association (§3.3 of the paper).
type Mode = packet.Mode

// Operational modes.
const (
	// ModeBase is the basic three-way exchange: one message per S1.
	ModeBase = packet.ModeBase
	// ModeC is ALPHA-C: one S1 carries n cumulative pre-signatures.
	ModeC = packet.ModeC
	// ModeM is ALPHA-M: one S1 carries a Merkle tree root over n messages.
	ModeM = packet.ModeM
	// ModeCM combines C and M: k Merkle roots per S1, shorter proofs per
	// packet (§3.3.2's combined operation).
	ModeCM = packet.ModeCM
)

// Suite is a cryptographic hash suite.
type Suite = suite.Suite

// SHA1 returns the SHA-1 suite (20-byte digests), the paper's default for
// mobile devices and mesh routers.
func SHA1() Suite { return suite.SHA1() }

// SHA256 returns the SHA-256 suite (32-byte digests), a modern default.
func SHA256() Suite { return suite.SHA256() }

// MMO returns the Matyas-Meyer-Oseas AES-128 suite (16-byte digests), the
// paper's choice for sensor nodes with AES hardware (§4.1.3).
func MMO() Suite { return suite.MMO() }

// Config parameterizes an Endpoint; the zero value selects basic unreliable
// ALPHA over SHA-1.
type Config = core.Config

// Endpoint is one end of an ALPHA association: a sans-IO engine fed with
// time and datagrams. Use NewEndpoint for direct (simulated or custom
// transport) integration, or DialUDP/ListenUDP for sockets.
type Endpoint = core.Endpoint

// NewEndpoint creates an endpoint with fresh hash chains.
func NewEndpoint(cfg Config) (*Endpoint, error) { return core.NewEndpoint(cfg) }

// Provisioned is one node's half of a statically bootstrapped association
// (§3.4: a base station distributes pair-wise anchors before deployment);
// AnchorSet is what it hands to on-path relays.
type (
	Provisioned = core.Provisioned
	AnchorSet   = core.AnchorSet
)

// Provision mints a matched endpoint pair plus the relay anchor set for a
// handshake-free association.
func Provision(cfg Config) (initiator, responder *Provisioned, anchors AnchorSet, err error) {
	return core.Provision(cfg)
}

// NewPreconfiguredEndpoint builds an already-established endpoint from
// provisioned material; no handshake packets are ever sent.
func NewPreconfiguredEndpoint(p *Provisioned) (*Endpoint, error) {
	return core.NewPreconfiguredEndpoint(p)
}

// Event is something an endpoint wants the application to know; EventKind
// enumerates the possibilities.
type (
	Event     = core.Event
	EventKind = core.EventKind
)

// Event kinds.
const (
	EventEstablished = core.EventEstablished
	EventDelivered   = core.EventDelivered
	EventAcked       = core.EventAcked
	EventNacked      = core.EventNacked
	EventSendFailed  = core.EventSendFailed
	EventChainLow    = core.EventChainLow
	EventDropped     = core.EventDropped
	EventRekeyed     = core.EventRekeyed
	EventPeerRekeyed = core.EventPeerRekeyed
	EventModeChanged = core.EventModeChanged
)

// Re-exported error values for errors.Is tests on events and decisions.
var (
	ErrBadMAC         = core.ErrBadMAC
	ErrBadProof       = core.ErrBadProof
	ErrBadAuthElement = core.ErrBadAuthElement
	ErrUnsolicited    = core.ErrUnsolicited
	ErrChainExhausted = core.ErrChainExhausted
	ErrNotEstablished = core.ErrNotEstablished
)

// Relay applies hop-by-hop verification at a forwarding node; RelayConfig
// parameterizes it and Decision is its per-packet verdict.
type (
	Relay       = relay.Relay
	RelayConfig = relay.Config
	Decision    = relay.Decision
	Verdict     = relay.Verdict
)

// Relay verdicts.
const (
	Forward = relay.Forward
	Drop    = relay.Drop
)

// NewRelay creates a verifying relay.
func NewRelay(cfg RelayConfig) *Relay { return relay.New(cfg) }

// Conn runs one association over a datagram socket with internal goroutines
// for receiving and retransmission.
type Conn = udptransport.Conn

// DialUDP starts an initiator association over UDP and waits for it to
// establish.
func DialUDP(pc net.PacketConn, peer net.Addr, cfg Config, timeout time.Duration) (*Conn, error) {
	return udptransport.Dial(pc, peer, cfg, timeout)
}

// ListenUDP accepts one association over UDP and waits for it to establish.
func ListenUDP(pc net.PacketConn, cfg Config, timeout time.Duration) (*Conn, error) {
	return udptransport.Listen(pc, cfg, timeout)
}

// Server accepts many associations on one datagram socket, demultiplexing
// by association ID; Session is one accepted association.
type (
	Server  = udptransport.Server
	Session = udptransport.Session
)

// NewUDPServer starts a multi-association responder on the socket.
func NewUDPServer(pc net.PacketConn, cfg Config) *Server {
	return udptransport.NewServer(pc, cfg)
}

// UDPRelay is a verifying UDP forwarder between two peers.
type UDPRelay = udptransport.Relay

// NewUDPRelay creates a verifying UDP relay between peers a and b.
func NewUDPRelay(pc net.PacketConn, a, b net.Addr, cfg RelayConfig) *UDPRelay {
	return udptransport.NewRelay(pc, a, b, cfg)
}

// Observability: every Endpoint, Relay and Server keeps a lock-free metric
// set reachable through its Telemetry method; an Exporter groups any number
// of them under name prefixes and renders Prometheus text, JSON, or a plain
// dump — and serves them over HTTP via its Handler, together with the
// optional per-association packet Tracer (set Config.Tracer /
// RelayConfig.Tracer).
type (
	Exporter         = telemetry.Exporter
	Tracer           = telemetry.Tracer
	EndpointMetrics  = telemetry.EndpointMetrics
	RelayMetrics     = telemetry.RelayMetrics
	TransportMetrics = telemetry.TransportMetrics
)

// NewExporter creates an empty metrics exporter.
func NewExporter() *Exporter { return telemetry.NewExporter() }

// NewTracer creates a packet-lifecycle tracer keeping the most recent size
// events (rounded up to a power of two).
func NewTracer(size int) *Tracer { return telemetry.NewTracer(size) }

// Runtime adaptation: Profile is the (mode, batch-size) pair new exchanges
// use. Endpoint.SetProfile — and its serialized Conn/Session wrappers —
// switches it at the next exchange boundary without disturbing in-flight
// exchanges; the adaptive controller closes the loop, sampling an
// endpoint's telemetry and issuing those transitions itself (Conn and
// Session expose EnableAdaptive, simulator nodes AttachAdaptive).
type (
	Profile            = core.Profile
	AdaptiveConfig     = adaptive.Config
	AdaptiveController = adaptive.Controller
	AdaptiveDecision   = adaptive.Decision
	AdaptiveSample     = adaptive.Sample
	ControllerMetrics  = telemetry.ControllerMetrics
)

// NewAdaptiveController creates a closed-loop mode/batch controller seeded
// with the endpoint's association and current profile. Feed it with
// adaptive.Drive (or SampleEndpoint + Observe) on a steady cadence.
func NewAdaptiveController(cfg AdaptiveConfig, ep *Endpoint) *AdaptiveController {
	return adaptive.ForEndpoint(cfg, ep)
}

// Simulator types: a deterministic discrete-event multi-hop network for
// tests, experiments and the examples.
type (
	Network      = netsim.Network
	LinkConfig   = netsim.LinkConfig
	SimPacket    = netsim.Packet
	EndpointNode = netsim.EndpointNode
	RelayNode    = netsim.RelayNode
)

// NewNetwork creates a simulator with the given random seed.
func NewNetwork(seed int64) *Network { return netsim.New(seed) }

// NewEndpointNode wraps an endpoint as a simulator node sending to peer.
func NewEndpointNode(net *Network, name, peer string, ep *Endpoint) *EndpointNode {
	return netsim.NewEndpointNode(net, name, peer, ep)
}

// NewRelayNode registers a verifying relay node on the simulator.
func NewRelayNode(net *Network, name string, cfg RelayConfig) *RelayNode {
	return netsim.NewRelayNode(net, name, cfg)
}

// DefaultLink returns a link profile resembling one 802.11 mesh hop.
func DefaultLink() LinkConfig { return netsim.DefaultLink() }
