// Quickstart: one signer, one verifying relay, one verifier on a simulated
// three-node path. Shows the full lifecycle — handshake, a protected
// message, hop-by-hop verification, and an end-to-end acknowledgment — in
// under a hundred lines.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"alpha"
)

func main() {
	// A deterministic simulated network: alice - relay - bob.
	net := alpha.NewNetwork(1)

	cfg := alpha.Config{
		Mode:     alpha.ModeBase, // one message per signature exchange
		Reliable: true,           // ask for verifiable pre-acknowledgments
	}
	epAlice, err := alpha.NewEndpoint(cfg)
	if err != nil {
		log.Fatal(err)
	}
	epBob, err := alpha.NewEndpoint(cfg)
	if err != nil {
		log.Fatal(err)
	}

	alice := alpha.NewEndpointNode(net, "alice", "bob", epAlice)
	bob := alpha.NewEndpointNode(net, "bob", "alice", epBob)
	relay := alpha.NewRelayNode(net, "relay", alpha.RelayConfig{})

	link := alpha.DefaultLink()
	net.AddDuplexLink("alice", "relay", link)
	net.AddDuplexLink("relay", "bob", link)
	net.AutoRoute()

	// Handshake: exchanges hash chain anchors end to end; the relay
	// learns them by observing (§3.4 of the paper).
	if err := alice.Start(net.Now()); err != nil {
		log.Fatal(err)
	}
	net.RunFor(time.Second)
	if !epAlice.Established() {
		log.Fatal("association did not establish")
	}
	fmt.Println("association established; relay learned the chain anchors")

	// Send one integrity-protected message.
	msg := []byte("meet at the old oak tree at noon")
	id, err := alice.Send(net.Now(), msg)
	if err != nil {
		log.Fatal(err)
	}
	alice.Flush(net.Now())
	net.RunFor(time.Second)

	// The verifier delivered it...
	for _, p := range bob.DeliveredPayloads() {
		fmt.Printf("bob verified and delivered: %q\n", p)
	}
	// ...the relay verified it on-path and could extract the content...
	for _, p := range relay.Extracted {
		fmt.Printf("relay verified in transit:  %q\n", p)
	}
	// ...and alice holds a cryptographic acknowledgment.
	if alice.CountEvents(alpha.EventAcked) == 1 {
		fmt.Printf("alice received a verifiable ack for message %d\n", id)
	}

	st := relay.R.Stats()
	fmt.Printf("\nrelay verdicts: %d forwarded, %d dropped\n", st.Forwarded, st.Dropped)

	// Every engine keeps live counters; an exporter renders them all. This
	// is the same data a real deployment serves on /metrics.
	exp := alpha.NewExporter()
	exp.Register("alice", epAlice.Telemetry())
	exp.Register("bob", epBob.Telemetry())
	exp.Register("relay", relay.R.Telemetry())
	fmt.Println("\ntelemetry snapshot:")
	if err := exp.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
