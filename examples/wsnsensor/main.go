// WSN sensor telemetry (the §4.1.3 scenario): a sensor node streams small
// readings to a collector across two relay motes on a 250 Kbit/s,
// 802.15.4-like radio, using the AES-based MMO hash (16-byte digests) and
// ALPHA-C with 5 pre-signatures per S1 — exactly the configuration the
// paper estimates. Every mote on the path verifies every reading before
// spending radio time forwarding it.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"time"

	"alpha"
)

const readings = 60

func main() {
	net := alpha.NewNetwork(7)
	cfg := alpha.Config{
		Suite:     alpha.MMO(), // AES-based hash: sensor nodes have AES hardware
		Mode:      alpha.ModeC,
		BatchSize: 5, // the paper's "5 pre-signed messages per S1"
		Reliable:  true,
		ChainLen:  1024,
		RTO:       300 * time.Millisecond,
		// Sensor nodes are RAM-starved: store one chain element in
		// sixteen and recompute the rest (8 KB budget, §4.1.3).
		CheckpointInterval: 16,
	}
	// Static bootstrapping (§3.4): before deployment, the base station
	// provisions the sensor, the sink AND both relay motes with pair-wise
	// anchors — no handshake and no asymmetric crypto ever goes on air.
	provSensor, provSink, anchors, err := alpha.Provision(cfg)
	if err != nil {
		log.Fatal(err)
	}
	epSensor, err := alpha.NewPreconfiguredEndpoint(provSensor)
	if err != nil {
		log.Fatal(err)
	}
	epSink, err := alpha.NewPreconfiguredEndpoint(provSink)
	if err != nil {
		log.Fatal(err)
	}
	sensor := alpha.NewEndpointNode(net, "sensor", "sink", epSensor)
	sink := alpha.NewEndpointNode(net, "sink", "sensor", epSink)
	// Strict relays: anything the base station did not provision dies here.
	mote1 := alpha.NewRelayNode(net, "mote1", alpha.RelayConfig{Strict: true})
	mote2 := alpha.NewRelayNode(net, "mote2", alpha.RelayConfig{Strict: true})
	if err := mote1.R.Seed(cfg.Suite, anchors); err != nil {
		log.Fatal(err)
	}
	if err := mote2.R.Seed(cfg.Suite, anchors); err != nil {
		log.Fatal(err)
	}

	// IEEE 802.15.4-like radio: 250 Kbit/s, high latency, some loss.
	radio := alpha.LinkConfig{
		Latency:   4 * time.Millisecond,
		Jitter:    2 * time.Millisecond,
		Loss:      0.03,
		Bandwidth: 250_000,
	}
	for _, pair := range [][2]string{{"sensor", "mote1"}, {"mote1", "mote2"}, {"mote2", "sink"}} {
		net.AddDuplexLink(pair[0], pair[1], radio)
	}
	// Each mote has ONE half-duplex transmitter shared by both its links —
	// forwarding a packet costs the same airtime twice, as on real radios.
	for _, name := range []string{"sensor", "mote1", "mote2", "sink"} {
		net.SetNodeRadio(name, 250_000)
	}
	net.AutoRoute()

	// Preconfigured association: usable from the first packet.
	fmt.Println("sensor provisioned for sink over 3 radio hops (MMO-AES128, no handshake)")

	// Emit one reading per second: 12-byte records (id, seq, value).
	start := net.Now()
	for i := 0; i < readings; i++ {
		i := i
		net.Schedule(start.Add(time.Duration(i)*time.Second), func(now time.Time) {
			reading := make([]byte, 12)
			binary.BigEndian.PutUint32(reading[0:], 0xBEE5)
			binary.BigEndian.PutUint32(reading[4:], uint32(i))
			temp := 20 + 5*math.Sin(float64(i)/10)
			binary.BigEndian.PutUint32(reading[8:], uint32(temp*100))
			if _, err := sensor.Send(now, reading); err != nil {
				log.Printf("send: %v", err)
			}
		})
	}
	// Batches of 5 fill once 5 readings accumulate; flush the tail.
	net.Schedule(start.Add(readings*time.Second+time.Second), func(now time.Time) {
		sensor.Flush(now)
	})
	net.RunFor(readings*time.Second + 30*time.Second)

	// Collect.
	got := sink.DeliveredPayloads()
	var lastTemp float64
	for _, r := range got {
		if len(r) == 12 {
			lastTemp = float64(binary.BigEndian.Uint32(r[8:])) / 100
		}
	}
	fmt.Printf("sink verified %d/%d readings end-to-end (last temp %.2f°C)\n", len(got), readings, lastTemp)
	fmt.Printf("sensor acked: %d, retransmits: %d\n",
		sensor.CountEvents(alpha.EventAcked), epSensor.Stats().Retransmits)
	for _, m := range []*alpha.RelayNode{mote1, mote2} {
		st := m.R.Stats()
		fmt.Printf("%s: verified-and-forwarded %d packets, dropped %d\n", m.Name, st.Forwarded, st.Dropped)
	}
	fmt.Printf("\nwire cost: %.1f bytes sent per 12-byte reading delivered\n",
		float64(epSensor.Stats().BytesSent)/float64(len(got)))
}
