// Mesh-grid scenario: many concurrent associations sharing a 3x3 relay
// grid. Four node pairs at the grid's edges talk across it simultaneously;
// the inner relays verify every flow independently (per-association chain
// state, the paper's "a different set of hash chains is to be used for each
// path") while an attacker's forged traffic for all four associations dies
// at the first relay it touches.
package main

import (
	"fmt"
	"log"
	"time"

	"alpha"
	"alpha/internal/core"
	"alpha/internal/packet"
)

const (
	pairs       = 4
	msgsPerPair = 10
)

func main() {
	net := alpha.NewNetwork(31)
	link := alpha.LinkConfig{Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Bandwidth: 20_000_000}

	// The 3x3 relay grid.
	var relays []*alpha.RelayNode
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			relays = append(relays, alpha.NewRelayNode(net, fmt.Sprintf("g%d_%d", r, c), alpha.RelayConfig{}))
		}
	}
	net.Grid(link, 3, 3, "g%d_%d")

	// Four endpoint pairs attached at the grid edges, crossing flows:
	// west<->east on two rows, north<->south on two columns.
	type pair struct {
		src, dst  *alpha.EndpointNode
		epS, epD  *alpha.Endpoint
		attachSrc string
		attachDst string
	}
	attach := [][2]string{
		{"g0_0", "g0_2"}, // row 0, west to east
		{"g2_0", "g2_2"}, // row 2
		{"g0_0", "g2_0"}, // column 0, north to south
		{"g0_2", "g2_2"}, // column 2
	}
	cfg := alpha.Config{Mode: alpha.ModeC, BatchSize: 5, Reliable: true, ChainLen: 256, RTO: 100 * time.Millisecond}
	var flows []pair
	for i, a := range attach {
		epS, err := alpha.NewEndpoint(cfg)
		if err != nil {
			log.Fatal(err)
		}
		epD, err := alpha.NewEndpoint(cfg)
		if err != nil {
			log.Fatal(err)
		}
		srcName := fmt.Sprintf("src%d", i)
		dstName := fmt.Sprintf("dst%d", i)
		src := alpha.NewEndpointNode(net, srcName, dstName, epS)
		dst := alpha.NewEndpointNode(net, dstName, srcName, epD)
		net.AddDuplexLink(srcName, a[0], link)
		net.AddDuplexLink(dstName, a[1], link)
		flows = append(flows, pair{src: src, dst: dst, epS: epS, epD: epD, attachSrc: a[0], attachDst: a[1]})
	}
	net.AutoRoute()

	// All four handshakes race across the shared grid.
	for _, f := range flows {
		if err := f.src.Start(net.Now()); err != nil {
			log.Fatal(err)
		}
	}
	net.RunFor(2 * time.Second)
	for i, f := range flows {
		if !f.epS.Established() {
			log.Fatalf("flow %d failed to establish", i)
		}
	}
	fmt.Printf("%d associations established across the shared 3x3 grid\n", pairs)

	// Concurrent traffic on every flow.
	for i, f := range flows {
		for m := 0; m < msgsPerPair; m++ {
			if _, err := f.src.Send(net.Now(), []byte(fmt.Sprintf("flow-%d message-%d", i, m))); err != nil {
				log.Fatal(err)
			}
		}
		f.src.Flush(net.Now())
	}
	net.RunFor(5 * time.Second)

	for i, f := range flows {
		got := len(f.dst.DeliveredPayloads())
		acked := f.src.CountEvents(alpha.EventAcked)
		fmt.Printf("flow %d (%s -> %s): delivered %d/%d, acked %d\n",
			i, f.attachSrc, f.attachDst, got, msgsPerPair, acked)
	}

	// An attacker forges S2 traffic for EVERY association at once.
	fmt.Println("\nattacker floods forged packets for all four associations...")
	net.AddNode("mallory", noop{})
	net.AddDuplexLink("mallory", "g1_1", link) // straight into the center
	net.AutoRoute()
	for i, f := range flows {
		for k := 0; k < 50; k++ {
			raw := forge(f.epS.Assoc(), uint32(1000+k))
			dst := fmt.Sprintf("dst%d", i)
			net.Schedule(net.Now().Add(time.Duration(k)*2*time.Millisecond), func(now time.Time) {
				_ = net.Inject("mallory", dst, raw)
			})
		}
	}
	net.RunFor(3 * time.Second)

	// The center relay never observed these flows' handshakes (they route
	// along the grid edges), so under the default incremental-deployment
	// policy it passes unknown traffic through — and the first flow-aware
	// relay on each path kills it. Nothing reaches an endpoint.
	dropped := uint64(0)
	for _, rn := range relays {
		st := rn.R.Stats()
		if st.Unsolicited > 0 {
			fmt.Printf("relay %s: tracks %d flows, dropped %d forged packets\n",
				rn.Name, rn.R.Flows(), st.Unsolicited)
		}
		dropped += st.Unsolicited
	}
	fmt.Printf("forged packets dropped on-path: %d/200\n", dropped)
	totalSpurious := 0
	for _, f := range flows {
		totalSpurious += len(f.dst.DeliveredPayloads()) - msgsPerPair
	}
	fmt.Printf("spurious deliveries across all flows: %d\n", totalSpurious)
}

type noop struct{}

func (noop) Receive(*alpha.Network, time.Time, alpha.SimPacket) {}

// forge builds a parseable S2 with garbage key material.
func forge(assoc uint64, seq uint32) []byte {
	junk := make([]byte, 20)
	for i := range junk {
		junk[i] = byte(seq + uint32(i))
	}
	raw, err := packet.Encode(packet.Header{
		Type: packet.TypeS2, Suite: 1, Flags: core.FlagInitiator, Assoc: assoc, Seq: seq,
	}, &packet.S2{Mode: packet.ModeBase, KeyIdx: 2, Key: junk, Payload: []byte("forged")})
	if err != nil {
		panic(err)
	}
	return raw
}
