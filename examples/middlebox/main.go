// Middlebox signaling and on-path filtering (§3.5 of the paper): a mobile
// host sends signed control messages to its peer across a path containing a
// middlebox. The middlebox (a) extracts and acts on verified signaling
// content without holding any shared key, and (b) shields the destination
// from an attacker's forged traffic and from a tampering relay — the two
// services conventional end-to-end MACs cannot provide.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"alpha"
	// The attacker half of this demo crafts raw wire packets, which the
	// public API deliberately does not help with.
	"alpha/internal/core"
	"alpha/internal/packet"
)

func main() {
	net := alpha.NewNetwork(21)
	cfg := alpha.Config{Mode: alpha.ModeBase, Reliable: true, ChainLen: 256}

	epMobile, err := alpha.NewEndpoint(cfg)
	if err != nil {
		log.Fatal(err)
	}
	epHome, err := alpha.NewEndpoint(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mobile := alpha.NewEndpointNode(net, "mobile", "home", epMobile)
	home := alpha.NewEndpointNode(net, "home", "mobile", epHome)
	box := alpha.NewRelayNode(net, "middlebox", alpha.RelayConfig{})

	link := alpha.DefaultLink()
	net.AddDuplexLink("mobile", "middlebox", link)
	net.AddDuplexLink("middlebox", "home", link)
	net.AutoRoute()

	// The middlebox reacts to verified signaling it relays: location
	// updates adjust its (simulated) forwarding table. It never needed a
	// key exchange with either endpoint.
	locations := map[string]string{}
	box.OnDecision = func(now time.Time, pkt alpha.SimPacket, d alpha.Decision) {
		if d.Extracted == nil {
			return
		}
		msg := string(d.Extracted)
		if strings.HasPrefix(msg, "LOC ") {
			locations["mobile"] = strings.TrimPrefix(msg, "LOC ")
			fmt.Printf("middlebox: verified location update -> %s\n", locations["mobile"])
		}
	}

	if err := mobile.Start(net.Now()); err != nil {
		log.Fatal(err)
	}
	net.RunFor(time.Second)
	if !epMobile.Established() {
		log.Fatal("association did not establish")
	}

	// Signed signaling: three location updates as the host roams.
	for _, loc := range []string{"cell-17", "cell-18", "cell-21"} {
		if _, err := mobile.Send(net.Now(), []byte("LOC "+loc)); err != nil {
			log.Fatal(err)
		}
		mobile.Flush(net.Now())
		net.RunFor(500 * time.Millisecond)
	}
	fmt.Printf("home agent verified %d updates; middlebox tracked the same state: %s\n\n",
		len(home.DeliveredPayloads()), locations["mobile"])

	// Attack 1: an off-path attacker floods forged "location updates" for
	// the association through the middlebox.
	fmt.Println("attacker floods 300 forged location updates...")
	before := len(home.DeliveredPayloads())
	flood := newForger(net, "attacker", epMobile.Assoc())
	net.AddDuplexLink("attacker", "middlebox", link)
	net.AutoRoute()
	flood.floodLocationUpdates(net, 300)
	net.RunFor(3 * time.Second)
	st := box.R.Stats()
	fmt.Printf("middlebox dropped them all: %d unsolicited drops; home agent saw %d new messages\n\n",
		st.Unsolicited, len(home.DeliveredPayloads())-before)

	// Attack 2: even a forged *S1 + junk S2* cannot poison the
	// middlebox's extracted state: extraction happens only after MAC
	// verification against the buffered pre-signature.
	if locations["mobile"] != "cell-21" {
		log.Fatalf("middlebox state was poisoned: %q", locations["mobile"])
	}
	fmt.Println("middlebox signaling state unpoisoned: still cell-21")
	fmt.Println("\nno shared secrets were ever given to the middlebox — verification is")
	fmt.Println("possible because pre-signatures commit to content before keys are revealed.")

	// The middlebox's full verdict breakdown, per drop reason.
	exp := alpha.NewExporter()
	exp.Register("middlebox", box.R.Telemetry())
	fmt.Println("\ntelemetry snapshot:")
	if err := exp.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// forger injects syntactically plausible but unverifiable packets for a
// victim association.
type forger struct {
	name  string
	assoc uint64
}

func newForger(net *alpha.Network, name string, assoc uint64) *forger {
	f := &forger{name: name, assoc: assoc}
	net.AddNode(name, noopHandler{})
	return f
}

type noopHandler struct{}

func (noopHandler) Receive(*alpha.Network, time.Time, alpha.SimPacket) {}

func (f *forger) floodLocationUpdates(net *alpha.Network, count int) {
	// Forged S2 packets with a fake key element and payload; relays must
	// refuse them for lack of a matching buffered pre-signature.
	for i := 0; i < count; i++ {
		raw, err := forgeS2(f.assoc, uint32(1000+i), []byte("LOC evil-tower"))
		if err != nil {
			continue
		}
		at := net.Now().Add(time.Duration(i) * 5 * time.Millisecond)
		net.Schedule(at, func(now time.Time) {
			_ = net.Inject(f.name, "home", raw)
		})
	}
}

// forgeS2 builds a well-formed S2 packet with garbage key material: it
// parses fine but can never match a buffered pre-signature.
func forgeS2(assoc uint64, seq uint32, payload []byte) ([]byte, error) {
	junk := make([]byte, 20)
	for i := range junk {
		junk[i] = byte(seq >> (i % 4 * 8))
	}
	hdr := packet.Header{
		Type:  packet.TypeS2,
		Suite: 1, // SHA-1
		Flags: core.FlagInitiator,
		Assoc: assoc,
		Seq:   seq,
	}
	return packet.Encode(hdr, &packet.S2{
		Mode:    packet.ModeBase,
		KeyIdx:  2,
		Key:     junk,
		Payload: payload,
	})
}
