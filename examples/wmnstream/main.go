// WMN bulk streaming (the §4.1.2 scenario): a high-volume transfer across a
// lossy four-hop wireless mesh, comparing the three ALPHA modes on goodput
// and overhead. ALPHA-C buys throughput with relay buffer space; ALPHA-M
// buys it with per-packet Merkle proofs and constant relay state — the
// trade-off of §3.3 of the paper, observable here in the byte counters.
package main

import (
	"fmt"
	"log"
	"time"

	"alpha"
)

const (
	totalMessages = 120
	payloadSize   = 1024
)

func main() {
	fmt.Printf("bulk transfer: %d messages x %d B across a lossy 4-hop mesh\n\n", totalMessages, payloadSize)
	fmt.Printf("%-8s %10s %12s %12s %14s %12s %12s\n", "mode", "delivered", "duration", "goodput", "signer bytes", "overhead", "ack latency")
	for _, m := range []struct {
		name  string
		mode  alpha.Mode
		batch int
	}{
		{"ALPHA", alpha.ModeBase, 1},
		{"ALPHA-C", alpha.ModeC, 16},
		{"ALPHA-M", alpha.ModeM, 16},
	} {
		delivered, dur, sent, lat := run(m.mode, m.batch)
		goodput := float64(delivered*payloadSize) * 8 / dur.Seconds()
		overhead := float64(sent)/float64(delivered*payloadSize) - 1
		fmt.Printf("%-8s %6d/%3d %12v %9.2f Mbit/s %14d %11.1f%% %12v\n",
			m.name, delivered, totalMessages, dur.Round(time.Millisecond), goodput/1e6, sent, overhead*100, lat.Round(time.Millisecond))
	}
	fmt.Println("\nALPHA-C and -M pipeline many payloads per signature round trip, so they")
	fmt.Println("finish far sooner than base ALPHA's one-message-per-RTT lockstep.")
}

// run streams the workload under one mode and reports delivery statistics.
func run(mode alpha.Mode, batch int) (delivered int, dur time.Duration, signerBytes uint64, meanAckLatency time.Duration) {
	net := alpha.NewNetwork(99)
	cfg := alpha.Config{
		Mode:       mode,
		BatchSize:  batch,
		Reliable:   true,
		ChainLen:   2048,
		RTO:        80 * time.Millisecond,
		MaxRetries: 20,
	}
	epS, err := alpha.NewEndpoint(cfg)
	if err != nil {
		log.Fatal(err)
	}
	epV, err := alpha.NewEndpoint(cfg)
	if err != nil {
		log.Fatal(err)
	}
	src := alpha.NewEndpointNode(net, "src", "dst", epS)
	dst := alpha.NewEndpointNode(net, "dst", "src", epV)

	// Four 802.11-ish hops with 2% loss each.
	link := alpha.LinkConfig{
		Latency:   2 * time.Millisecond,
		Jitter:    time.Millisecond,
		Loss:      0.02,
		Bandwidth: 20_000_000,
	}
	hops := []string{"src", "r1", "r2", "r3", "dst"}
	for i := 1; i < len(hops)-1; i++ {
		alpha.NewRelayNode(net, hops[i], alpha.RelayConfig{})
	}
	for i := 0; i+1 < len(hops); i++ {
		net.AddDuplexLink(hops[i], hops[i+1], link)
	}
	net.AutoRoute()

	if err := src.Start(net.Now()); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100 && !epS.Established(); i++ {
		net.RunFor(100 * time.Millisecond)
	}
	if !epS.Established() {
		log.Fatal("association did not establish")
	}

	payload := make([]byte, payloadSize)
	start := net.Now()
	for i := 0; i < totalMessages; i++ {
		payload[0] = byte(i)
		if _, err := src.Send(net.Now(), payload); err != nil {
			log.Fatal(err)
		}
	}
	src.Flush(net.Now())
	// Run until everything is acked or time runs out.
	for i := 0; i < 600 && src.CountEvents(alpha.EventAcked) < totalMessages; i++ {
		net.RunFor(100 * time.Millisecond)
	}
	dur = net.Now().Sub(start)
	return len(dst.DeliveredPayloads()), dur, epS.Stats().BytesSent, epS.Stats().MeanAckLatency()
}
