// Command alphavet runs the project-specific static analyzers over the ALPHA
// tree. Usage:
//
//	go run ./tools/alphavet [-only a,b] [packages]
//
// With no package arguments it analyzes ./... of the module in the current
// directory. Exit status is 1 if any analyzer reports a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"alpha/tools/alphavet/internal/analyzers/buildtagpair"
	"alpha/tools/alphavet/internal/analyzers/ctcompare"
	"alpha/tools/alphavet/internal/analyzers/dropcount"
	"alpha/tools/alphavet/internal/analyzers/hotpathalloc"
	"alpha/tools/alphavet/internal/analyzers/purposetag"
	"alpha/tools/alphavet/internal/analyzers/telemisuse"
	"alpha/tools/alphavet/internal/vet"
)

var all = []*vet.Analyzer{
	ctcompare.Analyzer,
	hotpathalloc.Analyzer,
	telemisuse.Analyzer,
	purposetag.Analyzer,
	buildtagpair.Analyzer,
	dropcount.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	selected := all
	if *only != "" {
		names := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			names[strings.TrimSpace(n)] = true
		}
		selected = nil
		for _, a := range all {
			if names[a.Name] {
				selected = append(selected, a)
				delete(names, a.Name)
			}
		}
		for n := range names {
			fmt.Fprintf(os.Stderr, "alphavet: unknown analyzer %q\n", n)
			os.Exit(2)
		}
	}

	pkgs, err := vet.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alphavet: %v\n", err)
		os.Exit(2)
	}
	diags, err := vet.RunAnalyzers(pkgs, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alphavet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "alphavet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
