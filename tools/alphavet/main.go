// Command alphavet runs the project-specific static analyzers over the ALPHA
// tree. Usage:
//
//	go run ./tools/alphavet [-only a,b] [-escape=false] [-json] [-v] [packages]
//
// With no package arguments it analyzes ./... of the module in the current
// directory. Exit status is 1 if any analyzer reports a finding.
//
// The default run layers a compiler-backed escape-analysis pass (go build
// -gcflags=-m=2) on top of the syntactic hotpathalloc pre-filter; -escape=false
// drops back to the purely syntactic suite, which is what the cross-
// configuration sweeps use together with -goos/-goarch (those select the
// build configuration the loader analyzes without needing to run on it).
//
// -json switches the report to one JSON object per finding
// ({"file","line","col","analyzer","message"}), the format the CI job turns
// into GitHub annotations. -v prints loader and per-analyzer timings to
// stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"alpha/tools/alphavet/internal/analyzers/buildtagpair"
	"alpha/tools/alphavet/internal/analyzers/ctcompare"
	"alpha/tools/alphavet/internal/analyzers/dropcount"
	"alpha/tools/alphavet/internal/analyzers/hotpathalloc"
	"alpha/tools/alphavet/internal/analyzers/lockscope"
	"alpha/tools/alphavet/internal/analyzers/purposetag"
	"alpha/tools/alphavet/internal/analyzers/reasonsync"
	"alpha/tools/alphavet/internal/analyzers/telemisuse"
	"alpha/tools/alphavet/internal/vet"
)

var all = []*vet.Analyzer{
	ctcompare.Analyzer,
	hotpathalloc.Analyzer,
	telemisuse.Analyzer,
	purposetag.Analyzer,
	buildtagpair.Analyzer,
	dropcount.Analyzer,
	lockscope.Analyzer,
	reasonsync.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	escape := flag.Bool("escape", true, "enable the compiler-backed escape-analysis pass (hotpathalloc v2)")
	jsonOut := flag.Bool("json", false, "report findings as one JSON object per line")
	verbose := flag.Bool("v", false, "print loader and per-analyzer timings to stderr")
	goos := flag.String("goos", "", "analyze this GOOS's file set instead of the host's (disables escape mode)")
	goarch := flag.String("goarch", "", "analyze this GOARCH's file set instead of the host's (disables escape mode)")
	jobs := flag.Int("jobs", 0, "loader/escape parallelism (default GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	selected := all
	if *only != "" {
		names := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			names[strings.TrimSpace(n)] = true
		}
		selected = nil
		for _, a := range all {
			if names[a.Name] {
				selected = append(selected, a)
				delete(names, a.Name)
			}
		}
		for n := range names {
			fmt.Fprintf(os.Stderr, "alphavet: unknown analyzer %q\n", n)
			os.Exit(2)
		}
	}

	// The escape pass shells out to the host compiler; a cross-configuration
	// sweep cannot use it (and CI does not ask it to).
	hotpathalloc.Escape = *escape
	if *goos != "" && *goos != runtime.GOOS || *goarch != "" && *goarch != runtime.GOARCH {
		if *escape {
			fmt.Fprintf(os.Stderr, "alphavet: -goos/-goarch sweep runs syntactic-only (escape pass disabled)\n")
		}
		hotpathalloc.Escape = false
	}

	start := time.Now()
	pkgs, err := vet.LoadConfig(vet.Config{Dir: ".", GOOS: *goos, GOARCH: *goarch, Jobs: *jobs}, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alphavet: %v\n", err)
		os.Exit(2)
	}
	loadTime := time.Since(start)
	diags, timings, err := vet.RunAnalyzersTimed(pkgs, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alphavet: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "alphavet: loaded %d packages in %v (%d jobs)\n", len(pkgs), loadTime.Round(time.Millisecond), loaderJobs(*jobs))
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "alphavet: %-14s %v\n", t.Analyzer, t.Duration.Round(time.Millisecond))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			rec := struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintf(os.Stderr, "alphavet: %v\n", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "alphavet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func loaderJobs(jobs int) int {
	if jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
