module alpha/tools/alphavet

go 1.22
