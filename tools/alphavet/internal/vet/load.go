package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path string
	Dir  string
	// Name is the package name ("main" for commands — the escape runner
	// needs to know so it can divert the linked binary).
	Name   string
	Fset   *token.FileSet
	Syntax []*ast.File
	// IgnoredSyntax holds parse-only ASTs of the package directory's
	// build-constraint-excluded files (from go list's IgnoredGoFiles).
	IgnoredSyntax []*ast.File
	Types         *types.Package
	Info          *types.Info
}

// listPackage mirrors the subset of `go list -json` fields the loader needs.
type listPackage struct {
	ImportPath     string
	Dir            string
	Name           string
	Export         string
	GoFiles        []string
	IgnoredGoFiles []string
	Standard       bool
	DepOnly        bool
	Error          *struct{ Err string }
}

// Config tunes a Load. The zero value analyzes the host build configuration
// with GOMAXPROCS-way parallelism.
type Config struct {
	// Dir is the directory whose module is analyzed ("." when empty).
	Dir string
	// GOOS/GOARCH select a build configuration other than the host's (the
	// CI cross-compile legs sweep darwin and windows file sets without
	// running on them). They apply to `go list` and the type-checker's
	// sizes; the compiler-backed escape pass is host-only and should be
	// disabled when these are set.
	GOOS, GOARCH string
	// Jobs bounds loader parallelism; <= 0 means GOMAXPROCS.
	Jobs int
}

// Load type-checks the packages matched by patterns with a default Config.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadConfig(Config{Dir: dir}, patterns...)
}

// LoadConfig type-checks the packages matched by patterns. It shells out to
// `go list -deps -export -json` so dependencies are resolved from compiler
// export data instead of source, keeping the loader small and the analysis
// independent of the dependency graph's own style. GOWORK is forced off so
// running from a go.work root still analyzes only the module under Dir.
//
// Target packages parse and type-check concurrently (bounded by Jobs):
// every dependency — including in-module ones — imports from export data,
// so no target depends on another target's type-checking having finished.
func LoadConfig(cfg Config, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Name,Export,GoFiles,IgnoredGoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	if cfg.GOOS != "" {
		cmd.Env = append(cmd.Env, "GOOS="+cfg.GOOS)
	}
	if cfg.GOARCH != "" {
		cmd.Env = append(cmd.Env, "GOARCH="+cfg.GOARCH)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var targets []*listPackage
	exportData := make(map[string]string) // import path -> export file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exportData[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	// The gc export-data importer memoizes loaded packages in an
	// unsynchronized map; one mutex serializes Import calls while leaving
	// parsing and type-checking (the expensive parts) parallel.
	var impMu sync.Mutex
	rawImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exportData[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		impMu.Lock()
		defer impMu.Unlock()
		return rawImp.Import(path)
	})

	arch := cfg.GOARCH
	if arch == "" {
		arch = runtime.GOARCH
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}

	pkgs := make([]*Package, len(targets))
	errs := make([]error, len(targets))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, lp := range targets {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, lp *listPackage) {
			defer wg.Done()
			defer func() { <-sem }()
			pkgs[i], errs[i] = typecheck(fset, imp, arch, lp)
		}(i, lp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, arch string, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	var ignored []*ast.File
	for _, name := range lp.IgnoredGoFiles {
		if !strings.HasSuffix(name, ".go") {
			continue
		}
		// Files excluded by the current build configuration: parse only,
		// never type-check (they may reference other platforms' symbols).
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		ignored = append(ignored, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", arch),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:          lp.ImportPath,
		Dir:           lp.Dir,
		Name:          lp.Name,
		Fset:          fset,
		Syntax:        files,
		IgnoredSyntax: ignored,
		Types:         tpkg,
		Info:          info,
	}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
