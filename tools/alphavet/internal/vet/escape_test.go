package vet_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alpha/tools/alphavet/internal/vet"
)

// TestParseEscapeDiagsFlow checks multi-line escape-flow attachment, heap
// classification, trailing-colon stripping, and duplicate collapsing.
func TestParseEscapeDiagsFlow(t *testing.T) {
	out := strings.Join([]string{
		"# alpha/a",
		"a.go:7:2: x escapes to heap:",
		"a.go:7:2:   flow: {heap} = &x:",
		"a.go:7:2:     from &x (address-of) at a.go:8:9",
		"a.go:7:2:     from sink = &x (assign) at a.go:8:7",
		"a.go:7:2: moved to heap: x",
		"a.go:9:15: make([]byte, v) escapes to heap:",
		"a.go:9:15:   flow: {heap} = &{storage for make([]byte, v)}:",
		"a.go:9:15: make([]byte, v) escapes to heap", // compiler restates: must dedupe
		"a.go:12:6: can inline helper with cost 7",
		"a.go:13:13: buf does not escape",
		"go: downloading something irrelevant",
	}, "\n")
	diags := vet.ParseEscapeDiags("/mod", []byte(out))
	if len(diags) != 5 {
		t.Fatalf("got %d diagnostics, want 5: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.File != "/mod/a.go" || d.Line != 7 || d.Col != 2 {
		t.Errorf("bad position: %+v", d)
	}
	if d.Message != "x escapes to heap" {
		t.Errorf("trailing colon not stripped: %q", d.Message)
	}
	if !d.Heap {
		t.Errorf("escapes-to-heap not classified Heap: %+v", d)
	}
	if len(d.Flow) != 3 || !strings.HasPrefix(d.Flow[0], "flow:") || !strings.Contains(d.Flow[1], "address-of") {
		t.Errorf("flow lines not attached: %q", d.Flow)
	}
	if !diags[1].Heap || diags[1].Message != "moved to heap: x" {
		t.Errorf("moved-to-heap not classified: %+v", diags[1])
	}
	if !diags[2].Heap || len(diags[2].Flow) != 1 {
		t.Errorf("second escape mis-parsed: %+v", diags[2])
	}
	if diags[3].Heap || diags[4].Heap {
		t.Errorf("inline/does-not-escape wrongly classified Heap: %+v %+v", diags[3], diags[4])
	}
}

// TestParseEscapeDiagsPaths checks that relative paths (including vendored
// ones) anchor to the build directory while absolute paths — what //line
// directives in generated files produce — pass through untouched.
func TestParseEscapeDiagsPaths(t *testing.T) {
	out := strings.Join([]string{
		"./pkg/a.go:3:2: moved to heap: x",
		"vendor/example.com/dep/b.go:4:5: y escapes to heap",
		"/abs/generated.go:9:1: moved to heap: z",
	}, "\n")
	diags := vet.ParseEscapeDiags("/mod", []byte(out))
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(diags))
	}
	if diags[0].File != "/mod/pkg/a.go" {
		t.Errorf("relative path not joined: %q", diags[0].File)
	}
	if diags[1].File != "/mod/vendor/example.com/dep/b.go" {
		t.Errorf("vendored path not joined: %q", diags[1].File)
	}
	if diags[2].File != "/abs/generated.go" {
		t.Errorf("absolute (line-directive) path rewritten: %q", diags[2].File)
	}
}

// TestEscapeDiagnosticsModule runs the real compiler over a scratch module:
// a main package (exercising the -o diversion), a build-tag-excluded file
// whose escapes must not surface, and a //line-directive file whose
// diagnostics keep the rewritten path.
func TestEscapeDiagnosticsModule(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("main.go", `package main

var sink *int

func main() {
	x := 1
	sink = &x
}
`)
	write("tagged.go", `//go:build neverbuildme

package main

var tsink *int

func tagLeak() {
	y := 2
	tsink = &y
}
`)
	write("gen.go", `//line /virtual/gen.src:100
package main

var gsink *int

func genLeak() {
	z := 3
	gsink = &z
}
`)

	pkgs, err := vet.Load(dir, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags, err := vet.EscapeDiagnostics(pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	var movedMain, movedTagged, movedVirtual bool
	for _, d := range diags {
		if !d.Heap {
			continue
		}
		switch {
		case d.File == filepath.Join(dir, "main.go") && strings.Contains(d.Message, "moved to heap: x"):
			movedMain = true
		case strings.Contains(d.Message, "moved to heap: y"):
			movedTagged = true
		case strings.HasPrefix(d.File, "/virtual/") && strings.Contains(d.Message, "moved to heap: z"):
			movedVirtual = true
		}
	}
	if !movedMain {
		t.Errorf("missing heap diagnostic for main.go; got %+v", diags)
	}
	if movedTagged {
		t.Errorf("build-tag-excluded file produced diagnostics")
	}
	if !movedVirtual {
		t.Errorf("line-directive file's diagnostics did not keep the rewritten path; got %+v", diags)
	}
}
