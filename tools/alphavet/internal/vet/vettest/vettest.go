// Package vettest runs analyzers against fixture modules under testdata and
// checks their findings against `// want "regexp"` comments, in the spirit of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory containing a complete module (go.mod + sources).
// Fixture modules are named `module alpha` and carry stub internal packages
// so analyzers keyed on alpha/internal/... package-path suffixes behave
// exactly as they do on the real tree. Each source line that should trigger
// a finding carries a trailing comment:
//
//	x := bytes.Equal(mac, want) // want `constant-time`
//
// The regexp must match the diagnostic message reported on that line. Lines
// without a want comment must produce no findings.
package vettest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"alpha/tools/alphavet/internal/vet"
)

// wantMarker splits off everything after "// want "; patRe then extracts
// each backtick- or quote-delimited pattern, so one comment can expect
// several diagnostics: // want `first` `second`
var (
	wantMarker = regexp.MustCompile(`// want (.*)$`)
	patRe      = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture module at dir, applies the analyzer, and reports any
// mismatch between diagnostics and want comments as test errors.
func Run(t *testing.T, dir string, a *vet.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := vet.Load(abs, "./...")
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := vet.RunAnalyzers(pkgs, []*vet.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	// Collect expectations from every file (including build-ignored ones,
	// where buildtagpair-style analyzers may report).
	want := make(map[string][]*expectation) // "file:line" -> expectations
	for _, pkg := range pkgs {
		files := append([]*ast.File{}, pkg.Syntax...)
		files = append(files, pkg.IgnoredSyntax...)
		for _, f := range files {
			collectWants(t, pkg.Fset, f, want)
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		exps := want[key]
		ok := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", rel(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for key, exps := range want {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("no diagnostic at %s matching %s", relKey(key), e.raw)
			}
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, want map[string][]*expectation) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantMarker.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			for _, lit := range patRe.FindAllString(m[1], -1) {
				var pat string
				if strings.HasPrefix(lit, "`") {
					pat = strings.Trim(lit, "`")
				} else {
					var err error
					pat, err = strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("bad want comment %q: %v", c.Text, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", pat, err)
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				want[key] = append(want[key], &expectation{re: re, raw: lit})
			}
		}
	}
}

func rel(path string) string {
	if wd, err := filepath.Abs("."); err == nil {
		if r, err := filepath.Rel(wd, path); err == nil {
			return r
		}
	}
	return path
}

func relKey(key string) string {
	if i := strings.LastIndex(key, ":"); i >= 0 {
		return rel(key[:i]) + key[i:]
	}
	return key
}
