// Package vet is a miniature, dependency-free reimplementation of the
// go/analysis driver model: analyzers receive parsed and type-checked
// packages and report position-anchored diagnostics.
//
// The real golang.org/x/tools/go/analysis framework is the obvious tool for
// this job, but the repository is deliberately stdlib-only, so this package
// provides the ~10% of it alphavet needs: an Analyzer struct, a Pass with
// syntax + types.Info, a loader (see load.go) that shells out to `go list
// -deps -export -json` and type-checks against compiler export data, and a
// fixture test harness (vettest) that understands `// want "re"` comments.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named check. Exactly one of Run and RunModule must be set:
// Run is invoked once per package, RunModule once with every package of the
// load so cross-package analyses (static call graphs) can see the whole
// module.
type Analyzer struct {
	Name string
	Doc  string
	// Run analyzes a single package.
	Run func(*Pass) error
	// RunModule analyzes all loaded target packages at once. Passes arrive
	// sorted by import path.
	RunModule func([]*Pass) error
}

// Pass carries one package's worth of analysis input and collects
// diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the type-checked syntax trees of the files selected by
	// the current build configuration.
	Files []*ast.File
	// IgnoredFiles holds parse-only syntax trees of files excluded by
	// build constraints (e.g. the _other.go fallback of a _linux.go file).
	// They are not type-checked and may target other platforms.
	IgnoredFiles []*ast.File
	// Dir is the package directory, Path the import path.
	Dir  string
	Path string

	Types *types.Package
	Info  *types.Info

	// Pkg is the loaded package behind this pass — the compiler-backed
	// passes hand it to EscapeDiagnostics.
	Pkg *Package

	diags *[]Diagnostic

	// lineDirectives caches, per file, the set of "//alpha:..." directives
	// keyed by line number, so waiver lookups are O(1).
	lineDirectives map[*token.File]map[int][]string
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a diagnostic at an externally produced position (the
// compiler-backed passes get file:line:col from `go build` output, not from
// a token.Pos in this FileSet).
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directive is the comment prefix of all alphavet annotations.
const Directive = "//alpha:"

// LineDirectives returns every "alpha:" directive on the source line of pos
// (e.g. "not-secret", "alloc-ok amortized by the key cache"). Directives may
// appear as trailing comments or as a full-line comment on the same line.
func (p *Pass) LineDirectives(pos token.Pos) []string {
	tf := p.Fset.File(pos)
	if tf == nil {
		return nil
	}
	return p.directivesAt(tf, tf.Line(pos))
}

// HasLineDirective reports whether the line of pos carries the named
// directive (matching the first word, so a rationale may follow).
func (p *Pass) HasLineDirective(pos token.Pos, name string) bool {
	for _, d := range p.LineDirectives(pos) {
		word, _, _ := strings.Cut(d, " ")
		if word == name {
			return true
		}
	}
	return false
}

// HasDirectiveAtLine reports whether the named directive appears on the
// given line of the given file — the file/line twin of HasLineDirective for
// positions that originate outside this FileSet (compiler diagnostics).
func (p *Pass) HasDirectiveAtLine(file string, line int, name string) bool {
	for _, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf == nil || tf.Name() != file {
			continue
		}
		// Borrow the cached per-line directive index via any pos on the
		// right line; LineBase arithmetic: find a comment-independent pos.
		for _, d := range p.directivesAt(tf, line) {
			word, _, _ := strings.Cut(d, " ")
			if word == name {
				return true
			}
		}
		return false
	}
	return false
}

// directivesAt returns the directives on one line of one file, building the
// same cache LineDirectives uses.
func (p *Pass) directivesAt(tf *token.File, line int) []string {
	if p.lineDirectives == nil {
		p.lineDirectives = make(map[*token.File]map[int][]string)
	}
	byLine, ok := p.lineDirectives[tf]
	if !ok {
		byLine = make(map[int][]string)
		for _, f := range p.Files {
			if p.Fset.File(f.Pos()) != tf {
				continue
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, Directive) {
						continue
					}
					byLine[tf.Line(c.Pos())] = append(byLine[tf.Line(c.Pos())], strings.TrimPrefix(c.Text, Directive))
				}
			}
		}
		p.lineDirectives[tf] = byLine
	}
	return byLine[line]
}

// FuncDirective reports whether the declaration's doc comment carries the
// named directive (e.g. FuncDirective(fd, "hotpath")).
func FuncDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, Directive)
		if !ok {
			continue
		}
		word, _, _ := strings.Cut(rest, " ")
		if word == name {
			return true
		}
	}
	return false
}

// Timing is one analyzer's wall-clock cost over a whole run (-v output).
type Timing struct {
	Analyzer string
	Duration time.Duration
}

// RunAnalyzers applies every analyzer to the loaded packages and returns the
// combined findings sorted by file position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersTimed(pkgs, analyzers)
	return diags, err
}

// RunAnalyzersTimed is RunAnalyzers plus per-analyzer wall-clock timings.
func RunAnalyzersTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	var diags []Diagnostic
	var timings []Timing
	for _, a := range analyzers {
		start := time.Now()
		var passes []*Pass
		for _, pkg := range pkgs {
			passes = append(passes, &Pass{
				Analyzer:     a,
				Fset:         pkg.Fset,
				Files:        pkg.Syntax,
				IgnoredFiles: pkg.IgnoredSyntax,
				Dir:          pkg.Dir,
				Path:         pkg.Path,
				Types:        pkg.Types,
				Info:         pkg.Info,
				Pkg:          pkg,
				diags:        &diags,
			})
		}
		switch {
		case a.RunModule != nil:
			if err := a.RunModule(passes); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		case a.Run != nil:
			for _, pass := range passes {
				if err := a.Run(pass); err != nil {
					return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pass.Path, err)
				}
			}
		default:
			return nil, nil, fmt.Errorf("%s: analyzer has neither Run nor RunModule", a.Name)
		}
		timings = append(timings, Timing{Analyzer: a.Name, Duration: time.Since(start)})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, timings, nil
}
