package vet

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// EscapeDiag is one parsed compiler escape-analysis diagnostic, as emitted
// by `go build -gcflags=-m=2`. Heap marks the two diagnostic forms that
// correspond to an actual heap allocation at that source position
// ("... escapes to heap" and "moved to heap: x"); everything else the
// compiler prints under -m=2 (inlining decisions, parameter leak summaries,
// "does not escape" negatives) parses but stays Heap=false so callers can
// assert the absence of escapes too.
type EscapeDiag struct {
	File string // absolute where resolvable, else as printed
	Line int
	Col  int // 0 when the compiler omitted a column
	// Message is the first diagnostic line with any trailing ":" (the
	// flow-explanation introducer) removed.
	Message string
	// Flow holds the indented escape-flow explanation lines that follow a
	// Heap diagnostic under -m=2, whitespace-trimmed, in order. This is the
	// compiler's own account of how the value reaches the heap.
	Flow []string
	Heap bool
}

// diagLine matches `file:line[:col]: message`. The file part is lazy so the
// first `:digits:` group after it binds to line/col, which also keeps
// //line-directive-rewritten absolute paths intact.
var diagLine = regexp.MustCompile(`^(.+?):(\d+)(?::(\d+))?: (.*)$`)

// ParseEscapeDiags parses `go build -gcflags=-m=2` output. dir anchors
// relative file positions (the compiler prints paths relative to the
// directory the go command ran in). Lines that are not diagnostics
// (package headers, toolchain chatter) are skipped; indented continuation
// lines attach to the preceding diagnostic as escape flow. Duplicate
// diagnostics (the compiler may restate an escape once per inlining
// context) collapse to one.
func ParseEscapeDiags(dir string, output []byte) []EscapeDiag {
	var out []EscapeDiag
	seen := make(map[string]int) // dedupe key -> index into out
	var last *EscapeDiag
	for _, raw := range strings.Split(string(output), "\n") {
		if raw == "" || strings.HasPrefix(raw, "#") || strings.HasPrefix(raw, "go: ") {
			last = nil
			continue
		}
		m := diagLine.FindStringSubmatch(raw)
		if m == nil {
			last = nil
			continue
		}
		file, lineStr, colStr, msg := m[1], m[2], m[3], m[4]
		if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
			// Indented continuation: escape-flow detail of the previous
			// diagnostic ("flow: {heap} = &x:", "from ... at ...").
			if last != nil {
				last.Flow = append(last.Flow, strings.TrimSpace(msg))
			}
			continue
		}
		line, _ := strconv.Atoi(lineStr)
		col := 0
		if colStr != "" {
			col, _ = strconv.Atoi(colStr)
		}
		if !filepath.IsAbs(file) && dir != "" {
			file = filepath.Join(dir, file)
		}
		msg = strings.TrimSuffix(msg, ":")
		d := EscapeDiag{
			File:    file,
			Line:    line,
			Col:     col,
			Message: msg,
			Heap:    strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap"),
		}
		key := fmt.Sprintf("%s:%d:%d:%s", d.File, d.Line, d.Col, d.Message)
		if i, dup := seen[key]; dup {
			last = &out[i]
			continue
		}
		seen[key] = len(out)
		out = append(out, d)
		last = &out[len(out)-1]
	}
	return out
}

// EscapeDiagnostics shells out to the real Go compiler for one package —
// `go build -gcflags=-m=2` in the package directory — and parses the escape
// diagnostics back. The build cache replays compiler output on cache hits,
// so repeated sweeps cost one cheap cache probe per package. GOWORK is
// forced off to match the loader's view of the module.
func EscapeDiagnostics(p *Package) ([]EscapeDiag, error) {
	args := []string{"build", "-gcflags=-m=2"}
	if p.Name == "main" {
		// A bare `go build .` would drop the linked binary into the package
		// directory; divert it.
		tmp, err := os.CreateTemp("", "alphavet-escape-*")
		if err != nil {
			return nil, err
		}
		tmp.Close()
		defer os.Remove(tmp.Name())
		args = append(args, "-o", tmp.Name())
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = p.Dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=2 %s: %v\n%s", p.Path, err, stderr.String())
	}
	return ParseEscapeDiags(p.Dir, stderr.Bytes()), nil
}
