// Package buildtagpair keeps the platform matrix honest in internal/udpio:
// every foo_linux.go must ship a foo_unsupported.go or foo_other.go fallback,
// and every symbol the package's build-neutral files reference from the
// linux file must also be declared by the fallback — otherwise darwin/windows
// builds break the moment someone adds a linux-only helper (the exact
// regression the cross-compile CI job exists to catch, caught here without a
// second toolchain).
//
// Arch-suffixed files (foo_linux_amd64.go) are exempt: their symbols are only
// referenced from other linux files.
package buildtagpair

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"

	"alpha/tools/alphavet/internal/vet"
)

var Analyzer = &vet.Analyzer{
	Name: "buildtagpair",
	Doc:  "every _linux.go in internal/udpio needs a matching _unsupported/_other fallback with the same referenced symbols",
	Run:  run,
}

// targetPkg limits the check to the package that actually maintains paired
// platform files.
const targetPkg = "internal/udpio"

func run(pass *vet.Pass) error {
	if !strings.HasSuffix(pass.Path, targetPkg) {
		return nil
	}

	// Index every file of the directory (compiled + build-ignored) by name.
	type srcFile struct {
		ast  *ast.File
		name string // base name
	}
	var all []srcFile
	for _, f := range pass.Files {
		all = append(all, srcFile{f, filepath.Base(pass.Fset.Position(f.Pos()).Filename)})
	}
	for _, f := range pass.IgnoredFiles {
		all = append(all, srcFile{f, filepath.Base(pass.Fset.Position(f.Pos()).Filename)})
	}

	// Symbols referenced from build-neutral files (no _linux/_other/
	// _unsupported/_arch suffix): these must exist on every platform.
	neutralRefs := make(map[string]bool)
	for _, sf := range all {
		if platformSuffixed(sf.name) {
			continue
		}
		ast.Inspect(sf.ast, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				neutralRefs[id.Name] = true
			}
			return true
		})
	}

	for _, sf := range all {
		base, ok := strings.CutSuffix(sf.name, "_linux.go")
		if !ok {
			continue
		}
		var fallback *srcFile
		for i := range all {
			if all[i].name == base+"_unsupported.go" || all[i].name == base+"_other.go" {
				fallback = &all[i]
				break
			}
		}
		if fallback == nil {
			pass.Reportf(sf.ast.Name.Pos(),
				"%s has no %s_unsupported.go or %s_other.go fallback; non-linux builds will miss its symbols",
				sf.name, base, base)
			continue
		}
		fallbackDecls := topLevelDecls(fallback.ast)
		for name, pos := range topLevelDecls(sf.ast) {
			if !neutralRefs[name] {
				continue // linux-internal helper; fallback need not mirror it
			}
			if _, ok := fallbackDecls[name]; !ok {
				pass.Reportf(pos,
					"%s declares %s, referenced from build-neutral files, but fallback %s does not declare it",
					sf.name, name, fallback.name)
			}
		}
	}
	return nil
}

// platformSuffixed reports whether the file name encodes a GOOS/GOARCH
// constraint or an explicit fallback role.
func platformSuffixed(name string) bool {
	stem := strings.TrimSuffix(name, ".go")
	for _, suffix := range []string{
		"_linux", "_darwin", "_windows", "_unix",
		"_amd64", "_arm64", "_386", "_arm",
		"_unsupported", "_other",
	} {
		if strings.HasSuffix(stem, suffix) || strings.Contains(stem, suffix+"_") {
			return true
		}
	}
	return false
}

// topLevelDecls returns the names (and positions) of the file's package-level
// funcs, types, vars, and consts. Methods are excluded: neutral code reaches
// them through interfaces, so each platform's conn type may differ freely.
func topLevelDecls(f *ast.File) map[string]token.Pos {
	decls := make(map[string]token.Pos)
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Recv == nil {
				decls[d.Name.Name] = d.Name.Pos()
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					decls[s.Name.Name] = s.Name.Pos()
				case *ast.ValueSpec:
					for _, n := range s.Names {
						decls[n.Name] = n.Pos()
					}
				}
			}
		}
	}
	return decls
}
