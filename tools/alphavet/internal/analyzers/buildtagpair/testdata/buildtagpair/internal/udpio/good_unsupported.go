//go:build !linux

package udpio

func goodInit() error { return nil }
