// Neutral file of the fixture udpio package: references the platform
// symbols every GOOS must provide.
package udpio

func open() error {
	if err := goodInit(); err != nil {
		return err
	}
	if err := orphanInit(); err != nil {
		return err
	}
	if !partialSupported {
		return nil
	}
	return partialInit()
}
