//go:build linux

package udpio

const partialSupported = true // want `partial_linux.go declares partialSupported, referenced from build-neutral files, but fallback partial_other.go does not declare it`

// partialInit is mirrored by partial_other.go, but partialSupported above is
// not — non-linux builds would fail to resolve it.
func partialInit() error { return nil } // this one is mirrored
