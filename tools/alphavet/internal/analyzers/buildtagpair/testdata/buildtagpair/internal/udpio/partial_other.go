//go:build !linux

package udpio

func partialInit() error { return nil }
