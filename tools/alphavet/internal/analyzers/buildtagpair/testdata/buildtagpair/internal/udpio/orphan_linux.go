//go:build linux

package udpio // want `orphan_linux.go has no orphan_unsupported.go or orphan_other.go fallback`

func orphanInit() error { return nil }
