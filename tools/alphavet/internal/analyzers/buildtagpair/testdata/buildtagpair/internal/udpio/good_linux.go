//go:build linux

package udpio

// goodInit has a complete _unsupported twin: no findings.
func goodInit() error { return nil }

// goodHelper is linux-internal (never referenced from neutral files), so the
// fallback need not mirror it.
func goodHelper() {}
