package buildtagpair_test

import (
	"testing"

	"alpha/tools/alphavet/internal/analyzers/buildtagpair"
	"alpha/tools/alphavet/internal/vet/vettest"
)

func TestBuildtagpair(t *testing.T) {
	vettest.Run(t, "testdata/buildtagpair", buildtagpair.Analyzer)
}
