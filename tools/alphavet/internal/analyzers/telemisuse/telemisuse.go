// Package telemisuse polices the telemetry and adaptive-control state types
// the same way go vet's copylocks polices sync.Mutex: Counter/Gauge/Histogram
// wrap sync/atomic values, and the adaptive Controller carries EWMA state, so
// copying one by value silently forks the state — increments land on a copy
// nobody reads. The analyzer flags:
//
//   - assignments, arguments, and returns that copy a guarded type by value
//     (structs containing guarded fields count: copying EndpointMetrics
//     copies every Counter inside it);
//   - escaping closures (anything but an immediately-invoked func literal)
//     that capture a guarded *value* variable — share a pointer instead.
package telemisuse

import (
	"go/ast"
	"go/types"
	"strings"

	"alpha/tools/alphavet/internal/vet"
)

var Analyzer = &vet.Analyzer{
	Name: "telemisuse",
	Doc:  "telemetry counters and adaptive controller state must not be copied by value",
	Run:  run,
}

// guardedNames maps package-path suffix -> type names whose values must
// never be copied.
var guardedNames = map[string][]string{
	"internal/telemetry": {"Counter", "Gauge", "Histogram"},
	"internal/adaptive":  {"Controller"},
}

func run(pass *vet.Pass) error {
	for _, f := range pass.Files {
		// Immediately-invoked literals never outlive their statement; only
		// literals that are stored, passed, returned, or launched as
		// goroutines can escape.
		iife := make(map[*ast.FuncLit]bool)
		goLaunched := make(map[*ast.FuncLit]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					goLaunched[lit] = true
				}
			case *ast.CallExpr:
				if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok && !goLaunched[lit] {
					iife[lit] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopy(pass, rhs, "assignment copies")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopy(pass, v, "assignment copies")
				}
			case *ast.CallExpr:
				checkCallArgs(pass, n)
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkCopy(pass, r, "return copies")
				}
			case *ast.FuncLit:
				if !iife[n] {
					checkCapture(pass, n)
				}
				return true
			}
			return true
		})
	}
	return nil
}

// checkCopy flags expr when evaluating it produces a by-value copy of a
// guarded type. Composite literals and calls to constructors are
// initializations, not copies.
func checkCopy(pass *vet.Pass, expr ast.Expr, what string) {
	e := ast.Unparen(expr)
	switch e.(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.UnaryExpr:
		return
	}
	tv, ok := pass.Info.Types[e]
	if !ok || !tv.IsValue() {
		return
	}
	if name := guardedTypeName(tv.Type); name != "" {
		pass.Reportf(expr.Pos(), "%s %s by value; telemetry/controller state must be shared by pointer", what, name)
	}
}

// checkCallArgs flags passing a guarded value where the callee takes it by
// value.
func checkCallArgs(pass *vet.Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		e := ast.Unparen(arg)
		switch e.(type) {
		case *ast.CompositeLit, *ast.CallExpr, *ast.UnaryExpr:
			continue
		}
		tv, ok := pass.Info.Types[e]
		if !ok || !tv.IsValue() {
			continue // type args of new()/make() are not copies
		}
		if name := guardedTypeName(tv.Type); name != "" {
			pass.Reportf(arg.Pos(), "call passes %s by value; pass a pointer", name)
		}
	}
}

// checkCapture flags non-IIFE func literals that capture a guarded value
// variable from an enclosing scope.
func checkCapture(pass *vet.Pass, lit *ast.FuncLit) {
	// Variables declared inside the literal are fine; collect their objects.
	local := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	for _, fl := range lit.Type.Params.List {
		for _, id := range fl.Names {
			if obj := pass.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
	}
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || local[obj] || reported[obj] || obj.IsField() || obj.Pkg() == nil {
			return true
		}
		if name := guardedTypeName(obj.Type()); name != "" {
			reported[obj] = true
			pass.Reportf(id.Pos(),
				"closure captures %s value %s; capture a pointer to it instead", name, obj.Name())
		}
		return true
	})
}

// guardedTypeName returns the guarded type's name if t is (or is a struct or
// array transitively containing) a guarded value type; "" otherwise.
// Pointers, slices, and maps break the chain: sharing through them is the
// sanctioned idiom.
func guardedTypeName(t types.Type) string {
	return guarded(t, make(map[types.Type]bool))
}

func guarded(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		pkg := n.Obj().Pkg()
		if pkg != nil {
			for suffix, names := range guardedNames {
				if !strings.HasSuffix(pkg.Path(), suffix) {
					continue
				}
				for _, name := range names {
					if n.Obj().Name() == name {
						return name
					}
				}
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := guarded(u.Field(i).Type(), seen); name != "" {
				if n, ok := t.(*types.Named); ok {
					return n.Obj().Name() + " (contains " + name + ")"
				}
				return name
			}
		}
	case *types.Array:
		return guarded(u.Elem(), seen)
	}
	return ""
}
