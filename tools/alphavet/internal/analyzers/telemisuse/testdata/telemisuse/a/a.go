// Fixture for the telemisuse analyzer.
package a

import (
	"alpha/internal/adaptive"
	"alpha/internal/telemetry"
)

func byValue(c telemetry.Counter) uint64 { return c.Load() } // consumes copies; call sites are flagged

func byPointer(c *telemetry.Counter) uint64 { return c.Load() }

func positives(m *telemetry.Metrics, ctrl *adaptive.Controller) telemetry.Counter {
	snapshot := m.Delivered // want `assignment copies Counter by value`
	snapshot.Inc()

	_ = byValue(m.Delivered) // want `call passes Counter by value`

	all := *m // want `assignment copies Metrics \(contains Counter\) by value`
	all.Delivered.Inc()

	c2 := *ctrl // want `assignment copies Controller by value`
	c2.Observe(0.5)

	var escaped func()
	escaped = func() { snapshot.Inc() } // want `closure captures Counter value snapshot`
	escaped()

	return m.Delivered // want `return copies Counter by value`
}

func negatives(m *telemetry.Metrics) *telemetry.Counter {
	// Pointer sharing is the sanctioned idiom.
	ptr := &m.Delivered
	_ = byPointer(ptr)

	// Initializing a fresh value is not a copy of live state.
	var fresh telemetry.Counter
	fresh.Inc()
	freshM := telemetry.Metrics{}
	freshM.Delivered.Inc()

	// new() takes a type argument, not a value.
	heap := new(telemetry.Counter)

	// Closures may capture pointers...
	go func() { heap.Inc() }()
	// ...and immediately-invoked literals never escape their statement.
	func() { fresh.Inc() }()

	return &m.Delivered
}
