// Stub of the real alpha/internal/telemetry package: the analyzer matches on
// the package-path suffix and type names, so this fixture exercises exactly
// the production matching logic.
package telemetry

import "sync/atomic"

type Counter struct{ v atomic.Uint64 }

func (c *Counter) Inc()         { c.v.Add(1) }
func (c *Counter) Load() uint64 { return c.v.Load() }

type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Set(x int64) { g.v.Store(x) }

type Histogram struct {
	buckets []uint64
}

func (h *Histogram) Observe(x float64) {}

// Metrics aggregates guarded types by value, so copying it forks them all.
type Metrics struct {
	Delivered Counter
	Depth     Gauge
}
