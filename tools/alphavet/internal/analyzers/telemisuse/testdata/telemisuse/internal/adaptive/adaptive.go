// Stub of alpha/internal/adaptive for suffix-matched analysis.
package adaptive

type Controller struct {
	lossEWMA float64
}

func (c *Controller) Observe(loss float64) { c.lossEWMA = loss }
