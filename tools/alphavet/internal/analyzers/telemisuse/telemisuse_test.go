package telemisuse_test

import (
	"testing"

	"alpha/tools/alphavet/internal/analyzers/telemisuse"
	"alpha/tools/alphavet/internal/vet/vettest"
)

func TestTelemisuse(t *testing.T) {
	vettest.Run(t, "testdata/telemisuse", telemisuse.Analyzer)
}
