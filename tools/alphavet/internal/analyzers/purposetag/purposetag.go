// Package purposetag enforces the hash-chain domain-separation discipline of
// paper §3.2.1: the purpose tags that separate signature chains (S1/S2) from
// acknowledgment chains (A1/A2) — and odd-index authentication elements from
// even-index MAC keys — must come from the canonical constants in
// alpha/internal/hashchain, paired correctly, and never be re-spelled as
// string literals at call sites (a transposed literal silently re-enables
// the reformatting attack the tags exist to stop).
//
// Rules:
//  1. Arguments bound to tagOdd/tagEven parameters of any module function
//     must be either the canonical TagS1/TagA1 (odd) and TagS2/TagA2 (even)
//     constants — paired within one chain family — or tag plumbing: an
//     identifier or field itself named tagOdd/tagEven with matching parity
//     (its own binding site is checked in turn).
//  2. No tag-shaped "ALPHA-…" string literals inside function bodies outside
//     the canonical packages (internal/hashchain, internal/merkle).
//     Package-level `var tagX = []byte("ALPHA-…")` declarations are
//     definitions, not call-site literals, and remain legal everywhere;
//     display names like "ALPHA-C" are not tag-shaped and are ignored.
package purposetag

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"alpha/tools/alphavet/internal/vet"
)

var Analyzer = &vet.Analyzer{
	Name: "purposetag",
	Doc:  "hash-chain purpose tags must be canonical constants with correct odd/even pairing",
	Run:  run,
}

const hashchainPkg = "internal/hashchain"

// canonicalPkgs may define (and internally use) tag literals: they are where
// the canonical tag vocabulary lives.
var canonicalPkgs = []string{hashchainPkg, "internal/merkle"}

// tagShaped matches strings used as hash-domain-separation input, as opposed
// to protocol display names ("ALPHA-C") or prose.
var tagShaped = regexp.MustCompile(`^ALPHA-(S[0-9]|A[0-9]|MT-|AMT-|ack-|handshake)`)

// tagInfo classifies a canonical tag constant.
type tagInfo struct {
	parity string // "odd" or "even"
	family string // chain family: "S" (signature), "A" (ack), …
}

// tagName is the shape of a canonical tag constant as exported by
// internal/hashchain: Tag + family + chain index. The vocabulary itself is
// read from the type-checked hashchain package scope (see classifyTag), not
// re-spelled here, so renaming or adding a tag constant is picked up
// without touching the analyzer.
var tagName = regexp.MustCompile(`^Tag([A-Za-z]+?)([0-9]+)$`)

// classifyTag classifies a package-level hashchain object whose name has
// the canonical tag shape; parity follows the chain index (odd indices are
// authentication elements, even indices MAC keys — paper §3.2.1).
func classifyTag(obj types.Object) *tagInfo {
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return nil // not package-level: locals can shadow tag names freely
	}
	switch obj.(type) {
	case *types.Var, *types.Const:
	default:
		return nil // a TagX1-shaped func or type is not a tag value
	}
	m := tagName.FindStringSubmatch(obj.Name())
	if m == nil {
		return nil
	}
	idx := m[2]
	parity := "even"
	if (idx[len(idx)-1]-'0')%2 == 1 {
		parity = "odd"
	}
	return &tagInfo{parity: parity, family: m[1]}
}

// canonicalNames lists the canonical tag constants visible in the hashchain
// package as imported by this pass, for diagnostics. Empty when the package
// is not in the import graph of the file under analysis.
func canonicalNames(pass *vet.Pass) []string {
	var hc *types.Package
	if strings.HasSuffix(pass.Path, hashchainPkg) {
		hc = pass.Types
	} else if pass.Types != nil {
		for _, imp := range pass.Types.Imports() {
			if strings.HasSuffix(imp.Path(), hashchainPkg) {
				hc = imp
				break
			}
		}
	}
	if hc == nil {
		return nil
	}
	var names []string
	for _, name := range hc.Scope().Names() {
		if obj := hc.Scope().Lookup(name); obj != nil && classifyTag(obj) != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func run(pass *vet.Pass) error {
	inCanonical := false
	for _, suffix := range canonicalPkgs {
		if strings.HasSuffix(pass.Path, suffix) {
			inCanonical = true
		}
	}
	canon := canonicalNames(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				// Package-level declarations may define tags as named
				// constants/vars — that is the sanctioned pattern.
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BasicLit:
					if !inCanonical {
						checkLiteral(pass, n)
					}
				case *ast.CallExpr:
					checkTagArgs(pass, n, canon)
				}
				return true
			})
		}
	}
	return nil
}

// checkLiteral flags tag-shaped "ALPHA-…" string literals inside function
// bodies of non-canonical packages.
func checkLiteral(pass *vet.Pass, lit *ast.BasicLit) {
	if lit.Kind != token.STRING {
		return
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil || !tagShaped.MatchString(s) {
		return
	}
	if pass.HasLineDirective(lit.Pos(), "not-secret") {
		return
	}
	pass.Reportf(lit.Pos(),
		"purpose-tag literal %s at a call site; hoist it to a package-level constant or use the canonical internal/hashchain tags",
		lit.Value)
}

// checkTagArgs validates arguments bound to tagOdd/tagEven parameters of
// module functions (and function-typed locals, e.g. builder closures).
// canon is the canonical tag vocabulary read from the imported hashchain
// package, used only to word the diagnostic.
func checkTagArgs(pass *vet.Pass, call *ast.CallExpr, canon []string) {
	sig := calleeSignature(pass, call)
	if sig == nil {
		return
	}
	var evenArg ast.Expr
	var oddInfo, evenInfo *tagInfo
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		pname := sig.Params().At(i).Name()
		if pname != "tagOdd" && pname != "tagEven" {
			continue
		}
		arg := call.Args[i]
		wantParity := "odd"
		if pname == "tagEven" {
			wantParity = "even"
		}
		if plumbed, parity := tagPlumbing(arg); plumbed {
			if parity != wantParity {
				pass.Reportf(arg.Pos(),
					"tag variable %s passed as %s; odd/even tags swapped (§3.2.1 reformatting-attack defense)",
					exprName(arg), pname)
			}
			continue
		}
		info := canonicalTag(pass, arg)
		if info == nil {
			vocab := "a canonical hashchain tag constant"
			if len(canon) > 0 {
				vocab += " (" + strings.Join(canon, "/") + ")"
			}
			pass.Reportf(arg.Pos(),
				"argument to %s must be %s or tag plumbing named tagOdd/tagEven",
				pname, vocab)
			continue
		}
		if info.parity != wantParity {
			pass.Reportf(arg.Pos(),
				"%s got an %s-parity tag; §3.2.1 requires Tag%s1-family tags on odd indices and Tag%s2-family on even",
				pname, info.parity, info.family, info.family)
		}
		if pname == "tagOdd" {
			oddInfo = info
		} else {
			evenArg, evenInfo = arg, info
		}
	}
	if oddInfo != nil && evenInfo != nil && oddInfo.family != evenInfo.family {
		pass.Reportf(evenArg.Pos(),
			"mixed tag families: tagOdd is %s-chain but tagEven is %s-chain; both must come from the same chain family",
			oddInfo.family, evenInfo.family)
	}
}

// tagPlumbing reports whether arg is a pass-through of an already-validated
// tag binding: an identifier or struct field itself named tagOdd/tagEven.
func tagPlumbing(arg ast.Expr) (ok bool, parity string) {
	name := exprName(arg)
	switch name {
	case "tagOdd":
		return true, "odd"
	case "tagEven":
		return true, "even"
	}
	return false, ""
}

func exprName(arg ast.Expr) string {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// canonicalTag returns the tag classification if arg resolves to one of the
// canonical hashchain tag constants, else nil. The vocabulary is whatever
// package-level Tag<Family><Index> objects the type-checked hashchain
// package actually exports — there is no list to keep in sync.
func canonicalTag(pass *vet.Pass, arg ast.Expr) *tagInfo {
	var obj types.Object
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[e.Sel]
	default:
		return nil
	}
	if obj == nil || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), hashchainPkg) {
		return nil
	}
	return classifyTag(obj)
}

// calleeSignature resolves the called function's signature for module
// functions, methods, and function-typed variables (closures). Non-module
// callees return nil: the tag discipline is ALPHA's own.
func calleeSignature(pass *vet.Pass, call *ast.CallExpr) *types.Signature {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	default:
		return nil
	}
	if obj == nil {
		return nil
	}
	if pkg := obj.Pkg(); pkg != nil && !strings.HasPrefix(pkg.Path(), "alpha") {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}
