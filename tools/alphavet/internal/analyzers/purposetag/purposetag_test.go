package purposetag_test

import (
	"testing"

	"alpha/tools/alphavet/internal/analyzers/purposetag"
	"alpha/tools/alphavet/internal/vet/vettest"
)

func TestPurposetag(t *testing.T) {
	vettest.Run(t, "testdata/purposetag", purposetag.Analyzer)
}
