package purposetag_test

import (
	"testing"

	"alpha/tools/alphavet/internal/analyzers/purposetag"
	"alpha/tools/alphavet/internal/vet/vettest"
)

func TestPurposetag(t *testing.T) {
	vettest.Run(t, "testdata/purposetag", purposetag.Analyzer)
}

// TestPurposetagRenamed runs the analyzer against a fixture whose hashchain
// stub renames every tag constant (TagSig1/TagAck1 …): the canonical
// vocabulary must be read from the package scope, not a re-spelled list, so
// the renamed constants are accepted and the diagnostics name them.
func TestPurposetagRenamed(t *testing.T) {
	vettest.Run(t, "testdata/purposetag-renamed", purposetag.Analyzer)
}
