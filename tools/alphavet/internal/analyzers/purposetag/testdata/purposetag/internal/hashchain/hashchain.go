// Stub of alpha/internal/hashchain: defines the canonical tag vocabulary
// and functions with tagOdd/tagEven parameters, mirroring the real API
// surface the analyzer keys on.
package hashchain

var (
	TagS1 = []byte("ALPHA-S1")
	TagS2 = []byte("ALPHA-S2")
	TagA1 = []byte("ALPHA-A1")
	TagA2 = []byte("ALPHA-A2")
)

type Owner struct{}

func New(tagOdd, tagEven, secret []byte, n int) (*Owner, error) {
	return &Owner{}, nil
}

func VerifyLink(tagOdd, tagEven, parent, child []byte, j uint32) bool {
	return tagFor(tagOdd, tagEven, j) != nil
}

func tagFor(tagOdd, tagEven []byte, j uint32) []byte {
	if j%2 == 1 {
		return tagOdd
	}
	return tagEven
}
