// Fixture for the purposetag analyzer.
package a

import "alpha/internal/hashchain"

// Package-level tag definitions are the sanctioned pattern for tags that do
// not belong to the four chain constants.
var tagLocal = []byte("ALPHA-handshake-v2")

func positives(secret []byte) {
	lit := []byte("ALPHA-S1") // want `purpose-tag literal "ALPHA-S1" at a call site`
	_ = lit

	_, _ = hashchain.New(lit, hashchain.TagS2, secret, 8) // want `argument to tagOdd must be a canonical hashchain tag constant`

	// Swapped parity: the §3.2.1 reformatting defense is void.
	_, _ = hashchain.New(hashchain.TagS2, hashchain.TagS1, secret, 8) // want `tagOdd got an even-parity tag` `tagEven got an odd-parity tag`

	// Mixed chain families leak ack elements into signature checks.
	_, _ = hashchain.New(hashchain.TagS1, hashchain.TagA2, secret, 8) // want `mixed tag families`

	plumb(hashchain.TagS2, hashchain.TagS1) // want `tagOdd got an even-parity tag` `tagEven got an odd-parity tag`
}

func negatives(secret []byte) {
	_, _ = hashchain.New(hashchain.TagS1, hashchain.TagS2, secret, 8)
	_, _ = hashchain.New(hashchain.TagA1, hashchain.TagA2, secret, 8)
	_ = hashchain.VerifyLink(hashchain.TagA1, hashchain.TagA2, secret, secret, 3)

	// Display names are not domain-separation tags.
	mode := "ALPHA-C"
	_ = mode
	// Locally defined package-level tags may be used at call sites.
	use(tagLocal)
	plumb(hashchain.TagS1, hashchain.TagS2)
}

// plumb forwards tags; its own call sites are validated, and passing its
// parameters onward is accepted as plumbing.
func plumb(tagOdd, tagEven []byte) {
	_, _ = hashchain.New(tagOdd, tagEven, nil, 8)
	crossed(tagEven, tagOdd) // want `tag variable tagEven passed as tagOdd` `tag variable tagOdd passed as tagEven`
}

func crossed(tagOdd, tagEven []byte) {}

func use(b []byte) {}
