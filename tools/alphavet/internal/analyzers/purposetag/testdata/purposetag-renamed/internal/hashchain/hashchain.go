// Stub of alpha/internal/hashchain with a RENAMED tag vocabulary
// (TagSig1/TagAck1 instead of TagS1/TagA1): the analyzer must classify
// these from the package scope alone, with no hard-coded name list.
package hashchain

var (
	TagSig1 = []byte("ALPHA-S1")
	TagSig2 = []byte("ALPHA-S2")
	TagAck1 = []byte("ALPHA-A1")
	TagAck2 = []byte("ALPHA-A2")
)

// notATag is package-level but not tag-shaped; it must not enter the
// canonical vocabulary.
var notATag = []byte("ALPHA-handshake-v3")

type Owner struct{}

func New(tagOdd, tagEven, secret []byte, n int) (*Owner, error) {
	return &Owner{}, nil
}

func VerifyLink(tagOdd, tagEven, parent, child []byte, j uint32) bool {
	return tagFor(tagOdd, tagEven, j) != nil
}

func tagFor(tagOdd, tagEven []byte, j uint32) []byte {
	_ = notATag
	if j%2 == 1 {
		return tagOdd
	}
	return tagEven
}
