// Fixture proving the purposetag analyzer reads the canonical tag
// vocabulary from the hashchain package scope: every constant here is
// renamed relative to the real module, and the analyzer must (a) accept
// the renamed constants, (b) classify their parity and family from the
// name shape, and (c) word its vocabulary diagnostic with the renamed set.
package a

import "alpha/internal/hashchain"

func renamedNegatives(secret []byte) {
	// The renamed constants are recognized without any analyzer change.
	_, _ = hashchain.New(hashchain.TagSig1, hashchain.TagSig2, secret, 8)
	_, _ = hashchain.New(hashchain.TagAck1, hashchain.TagAck2, secret, 8)
	_ = hashchain.VerifyLink(hashchain.TagAck1, hashchain.TagAck2, secret, secret, 3)
}

func renamedPositives(secret []byte) {
	bogus := secret
	// The suggested vocabulary is the renamed set, read from the package.
	_, _ = hashchain.New(bogus, hashchain.TagSig2, secret, 8) // want `argument to tagOdd must be a canonical hashchain tag constant \(TagAck1/TagAck2/TagSig1/TagSig2\)`

	// Parity classification follows the trailing chain index of the
	// renamed constants.
	_, _ = hashchain.New(hashchain.TagSig2, hashchain.TagSig1, secret, 8) // want `tagOdd got an even-parity tag` `tagEven got an odd-parity tag`

	// Family classification follows the renamed family word.
	_, _ = hashchain.New(hashchain.TagSig1, hashchain.TagAck2, secret, 8) // want `mixed tag families: tagOdd is Sig-chain but tagEven is Ack-chain`
}
