// Package dropcount guards the drop-accounting contract behind telemetry
// invariant I3 (DESIGN.md §5i): a packet that dies on the hot path must die
// counted. In every `//alpha:hotpath` function that handles packets (one
// whose signature mentions the packet wire types), a conditional early exit
// — a `return` or `continue` inside an `if` — is treated as a discard site
// and must be covered by a telemetry counter increment:
//
//   - the exit expression itself counts (`return r.drop(hdr, ...)`, where
//     drop transitively increments a telemetry.Counter), or
//   - an earlier statement in the same guard block counts
//     (`m.Dropped.Inc(); return`).
//
// Coverage is resolved transitively through module-local calls, so verdict
// helpers (drop, forward, NoteDrop) satisfy the contract as long as they
// reach a telemetry.Counter Inc/Add somewhere. Straight-line returns — the
// final statement of the function or of a switch/select case — are normal
// result paths, not discards, and are exempt.
//
// A finding is waived line-by-line with `//alpha:drop-ok <why>`, for exits
// whose accounting lives in the caller (e.g. a bool verdict helper whose
// false return the caller converts into a counted drop).
package dropcount

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"alpha/tools/alphavet/internal/vet"
)

var Analyzer = &vet.Analyzer{
	Name:      "dropcount",
	Doc:       "conditional exits in //alpha:hotpath packet functions must increment a telemetry counter",
	RunModule: runModule,
}

// funcKey identifies a function declaration across packages by stable
// strings, as in hotpathalloc.
type funcKey struct {
	pkg  string
	recv string
	name string
}

type declInfo struct {
	pass *vet.Pass
	decl *ast.FuncDecl
}

type checker struct {
	decls  map[funcKey]declInfo
	counts map[funcKey]int8 // memo: 0 unknown, 1 counts, -1 does not
}

func runModule(passes []*vet.Pass) error {
	c := &checker{
		decls:  make(map[funcKey]declInfo),
		counts: make(map[funcKey]int8),
	}
	var roots []funcKey
	for _, pass := range passes {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := keyOf(fn)
				c.decls[key] = declInfo{pass, fd}
				if vet.FuncDirective(fd, "hotpath") && handlesPackets(fn) {
					roots = append(roots, key)
				}
			}
		}
	}
	for _, root := range roots {
		di := c.decls[root]
		if di.decl.Body != nil {
			c.block(di.pass, rootName(root), di.decl.Body.List, false)
		}
	}
	return nil
}

// handlesPackets reports whether the function's parameters mention the
// packet wire types — the signal that its early exits discard traffic
// rather than unwind ordinary errors.
func handlesPackets(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if mentionsPacket(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func mentionsPacket(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return mentionsPacket(t.Elem())
	case *types.Slice:
		return mentionsPacket(t.Elem())
	case *types.Named:
		pkg := t.Obj().Pkg()
		return pkg != nil && (pkg.Path() == "packet" || strings.HasSuffix(pkg.Path(), "/packet"))
	}
	return false
}

// block scans one statement list. counted tracks whether a counting call
// already ran earlier in this same block; inIf marks that the list executes
// conditionally, which is what turns an uncounted exit into a finding.
// Nested blocks start their own counted state: an increment at the top of a
// function must not whitewash silent exits in later guards.
func (c *checker) block(pass *vet.Pass, fname string, stmts []ast.Stmt, inIf bool) {
	counted := false
	for _, st := range stmts {
		c.stmt(pass, fname, st, inIf, counted)
		if c.subtreeCounts(pass, st) {
			counted = true
		}
	}
}

func (c *checker) stmt(pass *vet.Pass, fname string, st ast.Stmt, inIf, counted bool) {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		if inIf && !counted && !c.subtreeCounts(pass, st) && !pass.HasLineDirective(st.Pos(), "drop-ok") {
			pass.Reportf(st.Pos(), "uncounted conditional return in hot packet path %s; increment a drop counter or waive with //alpha:drop-ok", fname)
		}
	case *ast.BranchStmt:
		if st.Tok == token.CONTINUE && inIf && !counted && !pass.HasLineDirective(st.Pos(), "drop-ok") {
			pass.Reportf(st.Pos(), "uncounted conditional continue in hot packet path %s; increment a drop counter or waive with //alpha:drop-ok", fname)
		}
	case *ast.IfStmt:
		c.ifStmt(pass, fname, st)
	case *ast.ForStmt:
		c.block(pass, fname, st.Body.List, false)
	case *ast.RangeStmt:
		c.block(pass, fname, st.Body.List, false)
	case *ast.SwitchStmt:
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.block(pass, fname, cc.Body, inIf)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.block(pass, fname, cc.Body, inIf)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				c.block(pass, fname, cc.Body, inIf)
			}
		}
	case *ast.BlockStmt:
		c.block(pass, fname, st.List, inIf)
	case *ast.LabeledStmt:
		c.stmt(pass, fname, st.Stmt, inIf, counted)
	}
}

// ifStmt scans both arms as conditional code.
func (c *checker) ifStmt(pass *vet.Pass, fname string, st *ast.IfStmt) {
	c.block(pass, fname, st.Body.List, true)
	switch el := st.Else.(type) {
	case *ast.BlockStmt:
		c.block(pass, fname, el.List, true)
	case *ast.IfStmt:
		c.ifStmt(pass, fname, el)
	}
}

// subtreeCounts reports whether any call in the statement's subtree
// increments a telemetry counter, directly or transitively.
func (c *checker) subtreeCounts(pass *vet.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil && c.funcCounts(fn) {
			found = true
			return false
		}
		return true
	})
	return found
}

// funcCounts reports whether calling fn (transitively) increments a
// telemetry counter. Cycles resolve to "does not count".
func (c *checker) funcCounts(fn *types.Func) bool {
	if isCounterIncr(fn) {
		return true
	}
	if fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "alpha") {
		return false
	}
	key := keyOf(fn)
	if v := c.counts[key]; v != 0 {
		return v > 0
	}
	c.counts[key] = -1 // in progress; a cycle does not count
	di, ok := c.decls[key]
	if ok && di.decl.Body != nil && c.subtreeCounts(di.pass, di.decl.Body) {
		c.counts[key] = 1
		return true
	}
	return false
}

// isCounterIncr matches telemetry.Counter.Inc and telemetry.Counter.Add —
// the primitive every counted drop bottoms out in.
func isCounterIncr(fn *types.Func) bool {
	if fn.Name() != "Inc" && fn.Name() != "Add" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Counter" && strings.HasSuffix(named.Obj().Pkg().Path(), "telemetry")
}

func calleeFunc(pass *vet.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func keyOf(fn *types.Func) funcKey {
	key := funcKey{pkg: fn.Pkg().Path(), name: fn.Name()}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			key.recv = n.Obj().Name()
		}
	}
	return key
}

func rootName(key funcKey) string {
	short := key.pkg
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	if key.recv != "" {
		return short + "." + key.recv + "." + key.name
	}
	return short + "." + key.name
}
