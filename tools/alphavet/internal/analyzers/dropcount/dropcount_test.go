package dropcount_test

import (
	"testing"

	"alpha/tools/alphavet/internal/analyzers/dropcount"
	"alpha/tools/alphavet/internal/vet/vettest"
)

func TestDropcount(t *testing.T) {
	vettest.Run(t, "testdata/dropcount", dropcount.Analyzer)
}
