// Stub of the wire-format package: parameter types of this package mark a
// hotpath function as packet-handling.
package packet

type Header struct {
	Seq  uint32
	Type byte
}

type S2 struct {
	Payload []byte
}
