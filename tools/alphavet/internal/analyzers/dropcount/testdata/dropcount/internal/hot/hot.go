package hot

import (
	"alpha/internal/packet"
	"alpha/internal/telemetry"
)

type engine struct {
	tel telemetry.Metrics
}

type decision struct{ verdict int }

// drop counts before reporting a verdict; exits returning it are covered.
func (e *engine) drop(hdr packet.Header) decision {
	e.tel.Dropped.Inc()
	return decision{}
}

// forward counts too (the non-discard verdict still increments a counter).
func (e *engine) forward(hdr packet.Header) decision {
	e.tel.Forwarded.Inc()
	return decision{}
}

// silent is uncounted and must not satisfy the analyzer.
func (e *engine) silent(hdr packet.Header) decision { return decision{} }

// countedExits exercises every covered form: counting return expression,
// transitive helper, and same-block increment before the exit.
//
//alpha:hotpath
func (e *engine) countedExits(hdr packet.Header, s2 *packet.S2) decision {
	if len(s2.Payload) == 0 {
		return e.drop(hdr)
	}
	if hdr.Type == 9 {
		e.tel.NoteDrop()
		return decision{}
	}
	if hdr.Seq == 0 {
		e.tel.Dropped.Inc()
		return decision{}
	}
	return e.forward(hdr)
}

// uncountedReturn dies silently inside a guard.
//
//alpha:hotpath
func (e *engine) uncountedReturn(hdr packet.Header) decision {
	if hdr.Seq == 0 {
		return decision{} // want `uncounted conditional return`
	}
	if hdr.Type == 1 {
		return e.silent(hdr) // want `uncounted conditional return`
	}
	return e.forward(hdr)
}

// uncountedContinue drops datagrams of a burst without counting.
//
//alpha:hotpath
func (e *engine) uncountedContinue(hdrs []packet.Header) {
	for _, hdr := range hdrs {
		if hdr.Type == 0 {
			continue // want `uncounted conditional continue`
		}
		if hdr.Seq == 0 {
			e.tel.Dropped.Inc()
			continue
		}
		e.forward(hdr)
	}
}

// waived documents why its silent exit is fine.
//
//alpha:hotpath
func (e *engine) waived(hdr packet.Header) decision {
	if hdr.Seq == 0 {
		return decision{} //alpha:drop-ok caller counts the nil verdict
	}
	return e.forward(hdr)
}

// switchResults returns verdicts from case-final positions: normal result
// paths, exempt. The guarded exit inside a case is still checked.
//
//alpha:hotpath
func (e *engine) switchResults(hdr packet.Header) bool {
	switch hdr.Type {
	case 1:
		if hdr.Seq == 0 {
			return false // want `uncounted conditional return`
		}
		return true
	default:
		return false
	}
}

// notHot is unchecked: no //alpha:hotpath directive.
func (e *engine) notHot(hdr packet.Header) decision {
	if hdr.Seq == 0 {
		return decision{}
	}
	return e.forward(hdr)
}

// noPackets is hotpath but does not handle packets; its error unwinding is
// not drop accounting.
//
//alpha:hotpath
func (e *engine) noPackets(n int) int {
	if n < 0 {
		return 0
	}
	return n
}
