// Stub of the real telemetry package: just enough surface for dropcount's
// typed Counter.Inc/Add detection.
package telemetry

type Counter struct{ v uint64 }

func (c *Counter) Inc()         { c.v++ }
func (c *Counter) Add(n uint64) { c.v += n }
func (c *Counter) Load() uint64 { return c.v }

type Metrics struct {
	Dropped   Counter
	Forwarded Counter
}

// NoteDrop is a counting helper: dropcount must resolve it transitively.
func (m *Metrics) NoteDrop() { m.Dropped.Inc() }
