// Fixture obs package for the reasonsync analyzer: a ReasonCatalog with
// deliberate drift against the fixture telemetry package.
package obs

import "alpha/internal/telemetry"

// ReasonEntry mirrors the real catalog's shape.
type ReasonEntry struct {
	Code    uint32
	Name    string
	Counter string
	Hostile bool
}

// ReasonCatalog is the fixture's reason table.
var ReasonCatalog = []ReasonEntry{
	{Code: telemetry.ReasonMalformed, Name: "malformed", Hostile: true},
	{Code: telemetry.ReasonUnknownAssoc, Name: "unknown_assoc"},
	{Code: telemetry.ReasonMalformed, Name: "malformed"},                        // want `duplicate ReasonCatalog entry for code 1`
	{Code: 42, Name: "stale"},                                                   // want `ReasonCatalog entry "stale" \(code 42\) does not correspond to any telemetry\.Reason constant`
	{Code: 99, Name: "future"},                                                  //alpha:reason-ok reserved for the next admission stage
	{Code: telemetry.ReasonRenamed, Name: "misnamed", Counter: "drop_renamed"},  // want `ReasonCatalog entry for code 6 is named "misnamed" but telemetry\.ReasonString says "renamed"`
	{Code: telemetry.ReasonExpired, Name: "expired", Counter: "sessions_expired"},
	{Code: telemetry.ReasonGhost, Name: "ghost"}, // want `ReasonCatalog entry "ghost" expects counter "drop_ghost", which no telemetry metric family exports`
}
