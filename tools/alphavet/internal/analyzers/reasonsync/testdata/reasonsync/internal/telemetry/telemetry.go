// Fixture telemetry package for the reasonsync analyzer: constants,
// ReasonString, and Walk-style counter emissions with deliberate drift.
package telemetry

// Reason codes.
const (
	ReasonNone uint32 = iota
	ReasonMalformed
	ReasonUnknownAssoc
	ReasonOrphan  // want `telemetry\.ReasonOrphan \(code 3\) has no obs\.ReasonCatalog entry`
	ReasonNoCase  // want `telemetry\.ReasonNoCase \(code 4\) has no ReasonString case` `telemetry\.ReasonNoCase \(code 4\) has no obs\.ReasonCatalog entry`
	ReasonWaived  //alpha:reason-ok experimental reason, catalog entry lands with the feature
	ReasonRenamed // catalog disagrees about this one's name
	ReasonExpired // counted by an irregular (non drop_) counter
	ReasonGhost   // catalog points at a counter nobody exports
)

// ReasonString names a Reason code.
func ReasonString(code uint32) string {
	switch code {
	case ReasonNone:
		return "none"
	case ReasonMalformed:
		return "malformed"
	case ReasonUnknownAssoc:
		return "unknown_assoc"
	case ReasonOrphan:
		return "orphan"
	case ReasonWaived:
		return "waived"
	case ReasonRenamed:
		return "renamed"
	case ReasonExpired:
		return "expired"
	case ReasonGhost:
		return "ghost"
	default:
		return "unknown"
	}
}

// Visitor receives exported samples.
type Visitor interface {
	Counter(name string, v uint64)
}

// Metrics is a stand-in family with both literal and generated counters.
type Metrics struct {
	dropReasons [16]uint64
}

// Walk exports the family.
func (m *Metrics) Walk(v Visitor) {
	// Generated family over the endpoint range, like EndpointMetrics.
	for code := uint32(1); code <= ReasonUnknownAssoc; code++ {
		v.Counter("drop_"+ReasonString(code), m.dropReasons[code])
	}
	v.Counter("drop_renamed", 2)
	v.Counter("sessions_expired", 3)
	v.Counter("drop_stray", 4)  // want `drop counter "drop_stray" has no obs\.ReasonCatalog entry`
	v.Counter("drop_shadow", 5) //alpha:reason-ok legacy alias kept for dashboards, accounted under drop_malformed
	v.Counter("forwarded", 6)
}

// WalkDyn exports a family whose code range depends on a runtime value:
// reasonsync cannot expand it and says so.
func (m *Metrics) WalkDyn(v Visitor, hi uint32) {
	for code := uint32(1); code <= hi; code++ {
		v.Counter("drop_"+ReasonString(code), 0) // want `cannot determine the code range of dynamic counter family`
	}
}
