module alpha

go 1.22
