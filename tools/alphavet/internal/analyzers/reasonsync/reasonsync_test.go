package reasonsync_test

import (
	"testing"

	"alpha/tools/alphavet/internal/analyzers/reasonsync"
	"alpha/tools/alphavet/internal/vet/vettest"
)

func TestReasonsync(t *testing.T) {
	vettest.Run(t, "testdata/reasonsync", reasonsync.Analyzer)
}
