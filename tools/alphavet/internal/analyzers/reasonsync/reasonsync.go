// Package reasonsync keeps the three places a drop reason lives from
// drifting apart (DESIGN.md §5l):
//
//  1. the telemetry.Reason* constant and its ReasonString name;
//  2. the counter the metric families export for it (the literal
//     "drop_..." Counter calls and the generated "drop_"+ReasonString(code)
//     loop in EndpointMetrics.Walk);
//  3. the obs.ReasonCatalog entry that classifies it for the I2/I3
//     invariants.
//
// The analyzer cross-checks all three: every Reason* constant must have a
// ReasonString case and a catalog entry; every catalog entry must name a
// live constant, agree with ReasonString, and point at a counter some
// family actually exports; every exported drop_* counter must be accounted
// for by a catalog entry. It only runs when both internal/telemetry and
// internal/obs are part of the load, so package-scoped sweeps stay quiet.
//
// A finding can be waived line-by-line with `//alpha:reason-ok <why>` on
// the constant, catalog entry, or Counter call.
package reasonsync

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"alpha/tools/alphavet/internal/vet"
)

var Analyzer = &vet.Analyzer{
	Name:      "reasonsync",
	Doc:       "telemetry.Reason* constants, exported drop_* counters, and the obs.ReasonCatalog must stay in sync",
	RunModule: runModule,
}

const (
	telemetrySuffix = "internal/telemetry"
	obsSuffix       = "internal/obs"
)

// reasonConst is one telemetry.Reason* constant.
type reasonConst struct {
	name string
	code uint64
	pos  token.Pos
}

// catalogEntry is one obs.ReasonCatalog element.
type catalogEntry struct {
	code    uint64
	name    string
	counter string // "" means "drop_"+name
	pos     token.Pos
}

func (e catalogEntry) counterName() string {
	if e.counter != "" {
		return e.counter
	}
	return "drop_" + e.name
}

func runModule(passes []*vet.Pass) error {
	var tele, obs *vet.Pass
	for _, p := range passes {
		switch {
		case strings.HasSuffix(p.Path, telemetrySuffix):
			tele = p
		case strings.HasSuffix(p.Path, obsSuffix):
			obs = p
		}
	}
	if tele == nil || obs == nil {
		return nil
	}

	consts := reasonConsts(tele)
	switchNames, casePresent := reasonStringCases(tele)
	emitted := emittedCounters(tele, switchNames)
	entries, catalogFound := catalogEntries(obs)

	if !catalogFound {
		if len(obs.Files) > 0 {
			obs.Reportf(obs.Files[0].Pos(), "package %s declares no ReasonCatalog; the I2/I3 invariants have no reason table to derive from", obs.Path)
		}
		return nil
	}

	// 1: every constant has a ReasonString case and a catalog entry.
	byCode := make(map[uint64][]catalogEntry)
	for _, e := range entries {
		byCode[e.code] = append(byCode[e.code], e)
	}
	for _, c := range consts {
		if tele.HasLineDirective(c.pos, "reason-ok") {
			continue
		}
		if !casePresent[c.code] {
			tele.Reportf(c.pos, "telemetry.%s (code %d) has no ReasonString case; it would trace as %q", c.name, c.code, "unknown")
		}
		if len(byCode[c.code]) == 0 {
			tele.Reportf(c.pos, "telemetry.%s (code %d) has no obs.ReasonCatalog entry; the I2/I3 invariants cannot classify it", c.name, c.code)
		}
	}

	// 2: every catalog entry names a live constant, agrees with
	// ReasonString, and points at an exported counter.
	constCodes := make(map[uint64]bool)
	for _, c := range consts {
		constCodes[c.code] = true
	}
	seenCode := make(map[uint64]bool)
	for _, e := range entries {
		if obs.HasLineDirective(e.pos, "reason-ok") {
			continue
		}
		if seenCode[e.code] {
			obs.Reportf(e.pos, "duplicate ReasonCatalog entry for code %d", e.code)
			continue
		}
		seenCode[e.code] = true
		if !constCodes[e.code] {
			obs.Reportf(e.pos, "ReasonCatalog entry %q (code %d) does not correspond to any telemetry.Reason constant", e.name, e.code)
			continue
		}
		if want, ok := switchNames[e.code]; ok && want != e.name {
			obs.Reportf(e.pos, "ReasonCatalog entry for code %d is named %q but telemetry.ReasonString says %q", e.code, e.name, want)
		}
		if len(emitted[e.counterName()]) == 0 {
			obs.Reportf(e.pos, "ReasonCatalog entry %q expects counter %q, which no telemetry metric family exports", e.name, e.counterName())
		}
	}

	// 3: every exported drop_* counter is accounted for by a catalog entry.
	catalogCounters := make(map[string]bool)
	for _, e := range entries {
		catalogCounters[e.counterName()] = true
	}
	names := make([]string, 0, len(emitted))
	for name := range emitted {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.HasPrefix(name, "drop_") || catalogCounters[name] {
			continue
		}
		for _, pos := range emitted[name] {
			if tele.HasLineDirective(pos, "reason-ok") {
				continue
			}
			tele.Reportf(pos, "drop counter %q has no obs.ReasonCatalog entry; I2/I3 cannot classify it", name)
		}
	}
	return nil
}

// reasonConsts collects the Reason* constants (code >= 1; ReasonNone is the
// zero sentinel and exempt).
func reasonConsts(pass *vet.Pass) []reasonConst {
	var out []reasonConst
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Reason") {
						continue
					}
					c, ok := pass.Info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					code, ok := constant.Uint64Val(c.Val())
					if !ok || code == 0 {
						continue
					}
					out = append(out, reasonConst{name: name.Name, code: code, pos: name.Pos()})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].code < out[j].code })
	return out
}

// reasonStringCases parses the ReasonString switch: code -> returned name.
func reasonStringCases(pass *vet.Pass) (map[uint64]string, map[uint64]bool) {
	names := make(map[uint64]string)
	present := make(map[uint64]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "ReasonString" || fd.Recv != nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				ret := caseReturnString(cc)
				for _, expr := range cc.List {
					code, ok := constUint(pass, expr)
					if !ok {
						continue
					}
					present[code] = true
					if ret != "" {
						names[code] = ret
					}
				}
				return true
			})
		}
	}
	return names, present
}

// caseReturnString extracts `return "name"` from a case body.
func caseReturnString(cc *ast.CaseClause) string {
	for _, stmt := range cc.Body {
		rs, ok := stmt.(*ast.ReturnStmt)
		if !ok || len(rs.Results) != 1 {
			continue
		}
		if lit, ok := rs.Results[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			return strings.Trim(lit.Value, `"`)
		}
	}
	return ""
}

// emittedCounters collects every counter name a Walk method exports, keyed
// to the Counter call positions. Literal names record as-is; the generated
// family `v.Counter("drop_"+ReasonString(code), ...)` expands through the
// enclosing for-loop's constant bounds using the ReasonString names.
func emittedCounters(pass *vet.Pass, switchNames map[uint64]string) map[string][]token.Pos {
	out := make(map[string][]token.Pos)
	for _, f := range pass.Files {
		var fors []*ast.ForStmt
		ast.Inspect(f, func(n ast.Node) bool {
			if fs, ok := n.(*ast.ForStmt); ok {
				fors = append(fors, fs)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Counter" {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			switch arg := arg.(type) {
			case *ast.BasicLit:
				if arg.Kind == token.STRING {
					name := strings.Trim(arg.Value, `"`)
					out[name] = append(out[name], call.Pos())
				}
			case *ast.BinaryExpr:
				prefix, codes, ok := dynamicFamily(pass, arg, fors, call.Pos())
				if !ok {
					pass.Reportf(call.Pos(), "cannot determine the code range of dynamic counter family %s; reasonsync needs constant loop bounds", types.ExprString(arg))
					return true
				}
				for _, code := range codes {
					name, ok := switchNames[code]
					if !ok {
						continue // missing case: reported on the constant
					}
					out[prefix+name] = append(out[prefix+name], call.Pos())
				}
			}
			return true
		})
	}
	return out
}

// dynamicFamily resolves `"drop_" + ReasonString(code)` inside a
// `for code := lo; code <= hi; code++` loop to the concrete code range.
func dynamicFamily(pass *vet.Pass, bin *ast.BinaryExpr, fors []*ast.ForStmt, at token.Pos) (string, []uint64, bool) {
	if bin.Op != token.ADD {
		return "", nil, false
	}
	prefix, ok := constString(pass, bin.X)
	if !ok {
		return "", nil, false
	}
	callY, ok := ast.Unparen(bin.Y).(*ast.CallExpr)
	if !ok {
		return "", nil, false
	}
	fn := calleeFunc(pass, callY)
	if fn == nil || fn.Name() != "ReasonString" {
		return "", nil, false
	}

	// Innermost enclosing for-loop.
	var loop *ast.ForStmt
	for _, fs := range fors {
		if at > fs.Pos() && at < fs.End() {
			if loop == nil || fs.Pos() > loop.Pos() {
				loop = fs
			}
		}
	}
	if loop == nil || loop.Init == nil || loop.Cond == nil {
		return "", nil, false
	}
	as, ok := loop.Init.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return "", nil, false
	}
	lo, ok := constUint(pass, as.Rhs[0])
	if !ok {
		return "", nil, false
	}
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok {
		return "", nil, false
	}
	hi, ok := constUint(pass, cond.Y)
	if !ok {
		return "", nil, false
	}
	switch cond.Op {
	case token.LEQ:
	case token.LSS:
		if hi == 0 {
			return "", nil, false
		}
		hi--
	default:
		return "", nil, false
	}
	if hi < lo || hi-lo > 4096 {
		return "", nil, false
	}
	var codes []uint64
	for code := lo; code <= hi; code++ {
		codes = append(codes, code)
	}
	return prefix, codes, true
}

// catalogEntries parses `var ReasonCatalog = []ReasonEntry{...}`.
func catalogEntries(pass *vet.Pass) ([]catalogEntry, bool) {
	var out []catalogEntry
	found := false
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "ReasonCatalog" || len(vs.Values) != 1 {
					continue
				}
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				found = true
				for _, elt := range cl.Elts {
					ecl, ok := elt.(*ast.CompositeLit)
					if !ok {
						continue
					}
					entry := catalogEntry{pos: ecl.Pos()}
					for _, kv := range ecl.Elts {
						pair, ok := kv.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := pair.Key.(*ast.Ident)
						if !ok {
							continue
						}
						switch key.Name {
						case "Code":
							entry.code, _ = constUint(pass, pair.Value)
						case "Name":
							entry.name, _ = constString(pass, pair.Value)
						case "Counter":
							entry.counter, _ = constString(pass, pair.Value)
						}
					}
					out = append(out, entry)
				}
			}
		}
	}
	return out, found
}

func constUint(pass *vet.Pass, e ast.Expr) (uint64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Uint64Val(constant.ToInt(tv.Value))
}

func constString(pass *vet.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func calleeFunc(pass *vet.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
