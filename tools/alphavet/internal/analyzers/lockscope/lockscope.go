// Package lockscope keeps blocking operations out of hot-path critical
// sections (DESIGN.md §5l). Inside a function that is hot — a
// //alpha:hotpath root or one of its static callees — the span between a
// sync.Mutex/RWMutex Lock/RLock and the matching Unlock/RUnlock (or the end
// of the function for deferred unlocks) must not:
//
//   - send on or receive from a channel outside a select with a default
//     case (the shard maps are consulted on every packet; a blocked sender
//     holding a shard mutex stalls the whole shard);
//   - use a select without a default case, or range over a channel;
//   - call time.Sleep, (*sync.WaitGroup).Wait, (*sync.Cond).Wait,
//     (*sync.Once).Do, or take another lock (nested locking under a hot
//     mutex is an ordering hazard as well as a latency one);
//   - call into packages net, syscall, or os (I/O under a shard lock);
//   - call a module-local function that transitively does any of the above.
//
// Functions whose doc comment carries //alpha:seqlock-write are writer
// sections of a seqlock (obs.SpanRing): readers spin while the sequence is
// odd, so the entire body is treated as a critical section regardless of
// hot-path reachability.
//
// A finding can be waived line-by-line with `//alpha:block-ok <why>`.
// Function literals are not analyzed at their definition site (a closure
// built under a lock runs later); interface-method calls are not traversed,
// same as hotpathalloc.
package lockscope

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"alpha/tools/alphavet/internal/vet"
)

var Analyzer = &vet.Analyzer{
	Name:      "lockscope",
	Doc:       "no blocking operations while a hot-path mutex is held or inside an //alpha:seqlock-write section",
	RunModule: runModule,
}

type funcKey struct {
	pkg  string
	recv string
	name string
}

type declInfo struct {
	pass *vet.Pass
	decl *ast.FuncDecl
}

func runModule(passes []*vet.Pass) error {
	decls := make(map[funcKey]declInfo)
	var roots []funcKey
	var seqlocks []funcKey
	for _, pass := range passes {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := keyOf(fn)
				decls[key] = declInfo{pass, fd}
				if vet.FuncDirective(fd, "hotpath") {
					roots = append(roots, key)
				}
				if vet.FuncDirective(fd, "seqlock-write") {
					seqlocks = append(seqlocks, key)
				}
			}
		}
	}

	// Hot set: every function statically reachable from a hotpath root.
	hot := make(map[funcKey]bool)
	for _, root := range roots {
		reach(decls, root, hot)
	}

	summaries := make(map[funcKey]*blockSummary)
	// Deterministic order: sort the examined set.
	var examine []funcKey
	for key := range hot {
		examine = append(examine, key)
	}
	sort.Slice(examine, func(i, j int) bool { return less(examine[i], examine[j]) })
	for _, key := range examine {
		di, ok := decls[key]
		if !ok || di.decl.Body == nil {
			continue
		}
		checkFunc(di, key, criticalSections(di), decls, summaries)
	}

	sort.Slice(seqlocks, func(i, j int) bool { return less(seqlocks[i], seqlocks[j]) })
	for _, key := range seqlocks {
		di := decls[key]
		if di.decl == nil || di.decl.Body == nil {
			continue
		}
		body := di.decl.Body
		sec := []section{{from: body.Pos(), to: body.End(), what: "inside the seqlock write section (//alpha:seqlock-write)"}}
		checkFunc(di, key, sec, decls, summaries)
	}
	return nil
}

func less(a, b funcKey) bool {
	if a.pkg != b.pkg {
		return a.pkg < b.pkg
	}
	if a.recv != b.recv {
		return a.recv < b.recv
	}
	return a.name < b.name
}

// reach marks key and its static module-local callees hot.
func reach(decls map[funcKey]declInfo, key funcKey, hot map[funcKey]bool) {
	if hot[key] {
		return
	}
	hot[key] = true
	di, ok := decls[key]
	if !ok || di.decl.Body == nil {
		return
	}
	ast.Inspect(di.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee, ok := localCallee(di.pass, call); ok {
			reach(decls, callee, hot)
		}
		return true
	})
}

// section is one critical interval inside a function body: positions in
// (from, to) hold a lock (or sit inside a seqlock write section).
type section struct {
	from, to token.Pos
	what     string // e.g. `mutex "s.mu"`
}

func (s section) contains(pos token.Pos) bool { return pos > s.from && pos < s.to }

// criticalSections derives the mutex-held intervals of one function from
// paired Lock/Unlock calls on the same receiver expression. A deferred
// unlock — or a missing one — extends the section to the end of the body.
func criticalSections(di declInfo) []section {
	type event struct {
		pos      token.Pos
		recv     string
		open     bool
		deferred bool
	}
	var events []event
	deferred := make(map[ast.Node]bool)
	ast.Inspect(di.decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recv, ok := mutexOp(di.pass, call)
		if !ok {
			return true
		}
		switch name {
		case "Lock", "RLock":
			events = append(events, event{pos: call.End(), recv: recv, open: true})
		case "Unlock", "RUnlock":
			events = append(events, event{pos: call.Pos(), recv: recv, deferred: deferred[call]})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var out []section
	used := make([]bool, len(events))
	for i, e := range events {
		if !e.open {
			continue
		}
		to := di.decl.Body.End()
		for j := i + 1; j < len(events); j++ {
			if events[j].open || used[j] || events[j].recv != e.recv {
				continue
			}
			used[j] = true
			// A deferred unlock runs at function return, not at its
			// source position: the lock stays held to the end of the body.
			if !events[j].deferred {
				to = events[j].pos
			}
			break
		}
		out = append(out, section{from: e.pos, to: to, what: fmt.Sprintf("while holding mutex %q", e.recv)})
	}
	return out
}

// mutexOp matches calls to sync.Mutex/RWMutex lock-family methods and
// returns the method name and the receiver expression's source form.
func mutexOp(pass *vet.Pass, call *ast.CallExpr) (name, recv string, ok bool) {
	sel, selOk := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOk {
		return "", "", false
	}
	fn, fnOk := pass.Info.Uses[sel.Sel].(*types.Func)
	if !fnOk || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return fn.Name(), types.ExprString(sel.X), true
	}
	return "", "", false
}

// checkFunc reports blocking operations inside the given sections of one
// function.
func checkFunc(di declInfo, key funcKey, sections []section, decls map[funcKey]declInfo, summaries map[funcKey]*blockSummary) {
	if len(sections) == 0 {
		return
	}
	pass := di.pass
	selectComm := selectCommOps(di.decl.Body)
	inspectNoFuncLit(di.decl.Body, func(n ast.Node) {
		pos := n.Pos()
		sec, ok := containing(sections, pos)
		if !ok {
			return
		}
		desc, blocking := blockingOp(pass, n, selectComm, decls, summaries)
		if !blocking {
			return
		}
		if pass.HasLineDirective(pos, "block-ok") {
			return
		}
		pass.Reportf(pos, "%s %s in hot path %s", desc, sec.what, funcName(key))
	})
}

func containing(sections []section, pos token.Pos) (section, bool) {
	for _, s := range sections {
		if s.contains(pos) {
			return s, true
		}
	}
	return section{}, false
}

// blockingOp classifies one AST node as a blocking operation. Module-local
// calls are judged by their transitive summary.
func blockingOp(pass *vet.Pass, n ast.Node, selectComm map[ast.Node]bool, decls map[funcKey]declInfo, summaries map[funcKey]*blockSummary) (string, bool) {
	switch n := n.(type) {
	case *ast.SendStmt:
		if selectComm[n] {
			return "", false
		}
		return "channel send", true
	case *ast.UnaryExpr:
		if n.Op != token.ARROW || selectComm[n] {
			return "", false
		}
		return "channel receive", true
	case *ast.SelectStmt:
		if hasDefault(n) {
			return "", false
		}
		return "select without default case", true
	case *ast.RangeStmt:
		if tv, ok := pass.Info.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "range over channel", true
			}
		}
		return "", false
	case *ast.CallExpr:
		if desc, ok := stdBlockingCall(pass, n); ok {
			return desc, true
		}
		if callee, ok := localCallee(pass, n); ok {
			if sum := summarize(callee, decls, summaries, nil); sum.blocks {
				return fmt.Sprintf("call to %s blocks (%s)", funcName(callee), sum.why), true
			}
		}
		return "", false
	}
	return "", false
}

// stdBlockingCall matches calls into the standard library that block or do
// I/O: time.Sleep, the sync wait family (including taking another lock),
// and anything in net, syscall, or os.
func stdBlockingCall(pass *vet.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	full := fn.Pkg().Path() + "." + fn.Name()
	if recv := recvTypeName(fn); recv != "" {
		full = fn.Pkg().Path() + "." + recv + "." + fn.Name()
	}
	switch full {
	case "time.Sleep":
		return "time.Sleep", true
	case "sync.WaitGroup.Wait", "sync.Cond.Wait", "sync.Once.Do":
		return full, true
	case "sync.Mutex.Lock", "sync.RWMutex.Lock", "sync.RWMutex.RLock":
		return "nested " + full, true
	}
	// Package-level functions of the I/O packages block (or may). Methods
	// are deliberately excluded: most are pure accessors on data types
	// ((*net.IP).To4, (*syscall.Iovec).SetLen), and the interface-typed
	// ones (net.Conn) do not resolve statically anyway.
	if recvTypeName(fn) == "" {
		switch fn.Pkg().Path() {
		case "syscall":
			switch fn.Name() {
			case "CmsgLen", "CmsgSpace", "TimevalToNsec", "NsecToTimeval", "TimespecToNsec", "NsecToTimespec":
				return "", false // pure arithmetic helpers, no kernel crossing
			}
			return fmt.Sprintf("potentially blocking %s.%s call", fn.Pkg().Path(), fn.Name()), true
		case "net", "os":
			return fmt.Sprintf("potentially blocking %s.%s call", fn.Pkg().Path(), fn.Name()), true
		}
	}
	return "", false
}

// blockSummary memoizes whether a function (transitively) blocks.
type blockSummary struct {
	blocks bool
	why    string
}

// summarize computes the transitive does-it-block summary for one
// module-local function. Waived (//alpha:block-ok) operation sites inside
// the callee do not count — the waiver's rationale travels with the code.
func summarize(key funcKey, decls map[funcKey]declInfo, summaries map[funcKey]*blockSummary, visiting map[funcKey]bool) *blockSummary {
	if sum, ok := summaries[key]; ok {
		return sum
	}
	if visiting[key] {
		return &blockSummary{} // recursion: break the cycle optimistically
	}
	if visiting == nil {
		visiting = make(map[funcKey]bool)
	}
	visiting[key] = true
	defer delete(visiting, key)

	sum := &blockSummary{}
	di, ok := decls[key]
	if ok && di.decl.Body != nil {
		pass := di.pass
		selectComm := selectCommOps(di.decl.Body)
		inspectNoFuncLit(di.decl.Body, func(n ast.Node) {
			if sum.blocks || pass.HasLineDirective(n.Pos(), "block-ok") {
				return
			}
			switch n := n.(type) {
			case *ast.SendStmt:
				if !selectComm[n] {
					sum.blocks, sum.why = true, "channel send"
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !selectComm[n] {
					sum.blocks, sum.why = true, "channel receive"
				}
			case *ast.SelectStmt:
				if !hasDefault(n) {
					sum.blocks, sum.why = true, "select without default"
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						sum.blocks, sum.why = true, "range over channel"
					}
				}
			case *ast.CallExpr:
				if desc, ok := stdBlockingCall(pass, n); ok {
					sum.blocks, sum.why = true, desc
					return
				}
				if callee, ok := localCallee(pass, n); ok {
					if inner := summarize(callee, decls, summaries, visiting); inner.blocks {
						sum.blocks = true
						sum.why = fmt.Sprintf("%s: %s", funcName(callee), inner.why)
					}
				}
			}
		})
	}
	summaries[key] = sum
	return sum
}

// selectCommOps collects the channel operations that appear as the comm
// clause of any select: those are judged through the select statement as a
// whole (non-blocking with a default case, one finding without), never as
// standalone channel ops.
func selectCommOps(body *ast.BlockStmt) map[ast.Node]bool {
	ops := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				ops[comm] = true
			case *ast.ExprStmt:
				if ue, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok {
					ops[ue] = true
				}
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					if ue, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok {
						ops[ue] = true
					}
				}
			}
		}
		return true
	})
	return ops
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// inspectNoFuncLit walks body without descending into function literals: a
// closure built inside a critical section runs later, outside it.
func inspectNoFuncLit(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// localCallee resolves a call to a module-local function or concrete
// method, skipping interface dispatch.
func localCallee(pass *vet.Pass, call *ast.CallExpr) (funcKey, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "alpha") {
		return funcKey{}, false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv().Underlying()) {
				return funcKey{}, false
			}
		}
	}
	return keyOf(fn), true
}

func calleeFunc(pass *vet.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func keyOf(fn *types.Func) funcKey {
	key := funcKey{pkg: fn.Pkg().Path(), name: fn.Name()}
	key.recv = recvTypeName(fn)
	return key
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func funcName(key funcKey) string {
	short := key.pkg
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	if key.recv != "" {
		return short + "." + key.recv + "." + key.name
	}
	return short + "." + key.name
}
