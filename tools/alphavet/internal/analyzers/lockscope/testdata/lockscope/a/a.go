// Fixture for the lockscope analyzer: no blocking operations while a
// hot-path mutex is held or inside a seqlock write section.
package a

import (
	"net"
	"sync"
	"time"
)

type shard struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	next sync.Mutex
	ch   chan int
	wg   sync.WaitGroup
}

// Dispatch is the hot root.
//
//alpha:hotpath
func (s *shard) Dispatch(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding mutex "s\.mu" in hot path a\.shard\.Dispatch`
	<-s.ch    // want `channel receive while holding mutex "s\.mu" in hot path a\.shard\.Dispatch`
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding mutex "s\.mu" in hot path a\.shard\.Dispatch`
	s.wg.Wait()                  // want `sync\.WaitGroup\.Wait while holding mutex "s\.mu" in hot path a\.shard\.Dispatch`
	s.next.Lock()                // want `nested sync\.Mutex\.Lock while holding mutex "s\.mu" in hot path a\.shard\.Dispatch`
	s.next.Unlock()
	net.Dial("udp", "localhost:0") // want `potentially blocking net\.Dial call while holding mutex "s\.mu" in hot path a\.shard\.Dispatch`
	relay(s.ch)                    // want `call to a\.relay blocks \(channel send\) while holding mutex "s\.mu" in hot path a\.shard\.Dispatch`

	// Non-blocking by construction: select with a default case.
	select {
	case s.ch <- v:
	default:
	}

	// Waived: the send is bounded by the drain goroutine's capacity.
	s.ch <- v //alpha:block-ok bounded by the drain goroutine

	s.mu.Unlock()

	// After the unlock: fine.
	s.ch <- v
}

// RDispatch exercises RLock/RUnlock pairing and blocking select.
//
//alpha:hotpath
func (s *shard) RDispatch(v int) {
	s.rw.RLock()
	select { // want `select without default case while holding mutex "s\.rw" in hot path a\.shard\.RDispatch`
	case s.ch <- v:
	case <-s.ch:
	}
	s.rw.RUnlock()
}

// Deferred unlocks hold the lock to the end of the function.
//
//alpha:hotpath
func (s *shard) DeferDispatch(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v > 0 {
		return
	}
	s.ch <- v // want `channel send while holding mutex "s\.mu" in hot path a\.shard\.DeferDispatch`
}

// Closures built under the lock run later: their bodies are not part of the
// critical section.
//
//alpha:hotpath
func (s *shard) SpawnDispatch(v int) {
	s.mu.Lock()
	fn := func() { s.ch <- v }
	s.mu.Unlock()
	fn()
}

// relay blocks: it sends on an unbuffered channel with no default.
func relay(ch chan int) {
	ch <- 1
}

// drain does not block: its channel ops all sit in select-with-default, and
// lockscope's transitive summary knows it.
func drain(ch chan int) {
	select {
	case <-ch:
	default:
	}
}

// Forward is hot and calls drain under the lock — clean.
//
//alpha:hotpath
func (s *shard) Forward() {
	s.mu.Lock()
	drain(s.ch)
	s.mu.Unlock()
}

// write is a seqlock writer section: the whole body is critical even though
// nothing reaches it from a hotpath root.
//
//alpha:seqlock-write
func (s *shard) write(v int) {
	s.ch <- v // want `channel send inside the seqlock write section \(//alpha:seqlock-write\) in hot path a\.shard\.write`
}

// cold holds a lock around a sleep, but is neither hot nor a seqlock
// writer: out of scope.
func cold(s *shard) {
	s.mu.Lock()
	time.Sleep(time.Second)
	s.mu.Unlock()
}
