package lockscope_test

import (
	"testing"

	"alpha/tools/alphavet/internal/analyzers/lockscope"
	"alpha/tools/alphavet/internal/vet/vettest"
)

func TestLockscope(t *testing.T) {
	vettest.Run(t, "testdata/lockscope", lockscope.Analyzer)
}
