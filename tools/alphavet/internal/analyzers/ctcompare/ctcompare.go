// Package ctcompare flags timing-unsafe comparisons of secret byte material.
//
// ALPHA's security argument (paper §3) assumes MAC, digest, and hash-chain
// element comparisons are constant-time: an early-exit bytes.Equal on a MAC
// lets an on-path attacker binary-search a forgery byte by byte. This
// analyzer flags bytes.Equal, reflect.DeepEqual, and ==/!= on values whose
// name or type marks them as secret material, unless the comparison goes
// through an approved constant-time comparator
// (crypto/subtle.ConstantTimeCompare, crypto/hmac.Equal, suite.Equal) or the
// line carries an `//alpha:not-secret <why>` waiver.
package ctcompare

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"alpha/tools/alphavet/internal/vet"
)

var Analyzer = &vet.Analyzer{
	Name: "ctcompare",
	Doc:  "flags non-constant-time comparisons of MACs, digests, and chain elements",
	Run:  run,
}

// secretWords are camelCase tokens that mark a value as secret material.
// They are matched against whole tokens of identifier and type names, so
// "macIn", "chainKey", and "rootDigest" match but "machine" does not.
var secretWords = map[string]bool{
	"mac": true, "macs": true, "hmac": true,
	"digest": true, "digests": true,
	"key": true, "keys": true,
	"secret": true, "secrets": true,
	"root": true, "roots": true,
	"element": true, "elements": true, "elem": true,
	"anchor": true, "anchors": true,
	"proof": true, "proofs": true,
	"sum": true, "sums": true,
}

func run(pass *vet.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkBinary(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkCall flags bytes.Equal / reflect.DeepEqual over secret arguments.
func checkCall(pass *vet.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "bytes" && (fn.Name() == "Equal" || fn.Name() == "Compare"):
	case fn.Pkg().Path() == "reflect" && fn.Name() == "DeepEqual":
	default:
		return
	}
	if len(call.Args) != 2 {
		return
	}
	for _, arg := range call.Args {
		if isSecret(pass, arg) {
			if pass.HasLineDirective(call.Pos(), "not-secret") {
				return
			}
			pass.Reportf(call.Pos(),
				"%s.%s on secret value %s is not constant-time; use crypto/subtle.ConstantTimeCompare (or add //alpha:not-secret with a reason)",
				fn.Pkg().Name(), fn.Name(), exprString(arg))
			return
		}
	}
}

// checkBinary flags ==/!= where an operand is secret byte material
// (strings or byte arrays; slices cannot be compared with ==).
func checkBinary(pass *vet.Pass, be *ast.BinaryExpr) {
	for _, op := range []ast.Expr{be.X, be.Y} {
		tv, ok := pass.Info.Types[op]
		if !ok || tv.Value != nil || tv.IsNil() {
			// Comparisons against constants or nil are not data-dependent
			// on the secret's full contents in the way we police here.
			return
		}
	}
	for _, op := range []ast.Expr{be.X, be.Y} {
		if isSecret(pass, op) {
			if pass.HasLineDirective(be.Pos(), "not-secret") {
				return
			}
			pass.Reportf(be.Pos(),
				"%s comparison of secret value %s is not constant-time; use crypto/subtle.ConstantTimeCompare (or add //alpha:not-secret with a reason)",
				be.Op, exprString(op))
			return
		}
	}
}

// isSecret reports whether expr is byte material (string, []byte, or [N]byte)
// whose identifier, field, or named-type name contains a secret token.
func isSecret(pass *vet.Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || !isByteMaterial(tv.Type) {
		return false
	}
	if nameIsSecret(typeName(tv.Type)) {
		return true
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return nameIsSecret(e.Name)
	case *ast.SelectorExpr:
		return nameIsSecret(e.Sel.Name)
	case *ast.CallExpr:
		// e.g. w.Element(j), chain.Key() — judge by the callee's name.
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			return nameIsSecret(fun.Name)
		case *ast.SelectorExpr:
			return nameIsSecret(fun.Sel.Name)
		}
	case *ast.IndexExpr:
		return isSecret(pass, e.X)
	case *ast.SliceExpr:
		return isSecret(pass, e.X)
	}
	return false
}

func isByteMaterial(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		return isByte(u.Elem())
	case *types.Array:
		return isByte(u.Elem())
	}
	return false
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

func typeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// nameIsSecret splits name on case boundaries and underscores and checks
// each token against the secret vocabulary.
func nameIsSecret(name string) bool {
	for _, tok := range splitName(name) {
		if secretWords[tok] {
			return true
		}
	}
	return false
}

func splitName(name string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_':
			flush()
		case unicode.IsUpper(r) && i > 0 && (unicode.IsLower(runes[i-1]) ||
			(i+1 < len(runes) && unicode.IsLower(runes[i+1]))):
			flush()
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	default:
		return "expression"
	}
}
