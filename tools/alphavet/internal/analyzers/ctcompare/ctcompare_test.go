package ctcompare_test

import (
	"testing"

	"alpha/tools/alphavet/internal/analyzers/ctcompare"
	"alpha/tools/alphavet/internal/vet/vettest"
)

func TestCtcompare(t *testing.T) {
	vettest.Run(t, "testdata/ctcompare", ctcompare.Analyzer)
}
