// Fixture for the ctcompare analyzer: timing-unsafe comparisons of secret
// byte material must be flagged; approved comparators, waived lines, and
// non-secret data must not.
package a

import (
	"bytes"
	"crypto/subtle"
	"reflect"
)

type session struct {
	mac    []byte
	digest [20]byte
	peer   string
}

func positives(s *session, mac, payloadMAC []byte, want [20]byte, chainKey string) bool {
	if bytes.Equal(s.mac, mac) { // want `bytes.Equal on secret value`
		return true
	}
	if bytes.Compare(mac, payloadMAC) == 0 { // want `bytes.Compare on secret value`
		return true
	}
	if s.digest == want { // want `== comparison of secret value`
		return true
	}
	if chainKey != s.peer { // want `!= comparison of secret value`
		return true
	}
	macs := [][]byte{mac}
	return reflect.DeepEqual(macs[0], mac) // want `reflect.DeepEqual on secret value`
}

func negatives(s *session, mac, payload, other []byte) bool {
	// The approved comparator.
	if subtle.ConstantTimeCompare(s.mac, mac) == 1 {
		return true
	}
	// Non-secret byte data may use bytes.Equal freely.
	if bytes.Equal(payload, other) {
		return true
	}
	// Comparing a secret against a constant is configuration, not a MAC
	// check — the length guard idiom.
	if len(mac) == 0 {
		return false
	}
	// Explicitly waived: the "mac" here is a vendor OUI, not a secret.
	return bytes.Equal(s.mac, other) //alpha:not-secret hardware address, not a MAC
}
