package hotpathalloc_test

import (
	"testing"

	"alpha/tools/alphavet/internal/analyzers/hotpathalloc"
	"alpha/tools/alphavet/internal/vet/vettest"
)

func TestHotpathalloc(t *testing.T) {
	vettest.Run(t, "testdata/hotpathalloc", hotpathalloc.Analyzer)
}
