package hotpathalloc_test

import (
	"testing"

	"alpha/tools/alphavet/internal/analyzers/hotpathalloc"
	"alpha/tools/alphavet/internal/vet/vettest"
)

func TestHotpathalloc(t *testing.T) {
	vettest.Run(t, "testdata/hotpathalloc", hotpathalloc.Analyzer)
}

// TestHotpathallocEscapeMode exercises the compiler-backed pass: the fixture
// compiles for real and the `go build -gcflags=-m=2` diagnostics map onto
// hot functions, honoring alloc-ok waivers.
func TestHotpathallocEscapeMode(t *testing.T) {
	hotpathalloc.Escape = true
	defer func() { hotpathalloc.Escape = false }()
	vettest.Run(t, "testdata/hotpathalloc-escape", hotpathalloc.Analyzer)
}
