// Package hotpathalloc guards the zero-allocation discipline of the packet
// hot path (DESIGN.md §5c). Functions whose doc comment carries
// `//alpha:hotpath` — and every function they statically call within the
// module — may not:
//
//   - call into package fmt (formatting allocates and boxes);
//   - create escaping closures (any func literal except an immediately
//     invoked one);
//   - append to a fresh/unsized slice (append to a `var s []T`-style local
//     or to a nil/empty-literal conversion — growth reallocs on the hot path);
//   - allocate maps (make(map...) or map literals);
//   - box a concrete value into an interface (explicit conversion or call
//     argument, the classic hidden allocation).
//
// A finding can be waived line-by-line with `//alpha:alloc-ok <why>`; the
// waiver also stops call-graph traversal through calls on that line (for
// amortized slow paths like cache misses). Interface method calls are not
// traversed: the static analysis cannot resolve dynamic targets, so
// interface boundaries are where the guarantee is re-established by
// annotating the implementations.
//
// # Escape mode
//
// The rules above are a syntactic pre-filter: fast, explainable, and
// portable, but a heuristic. With Escape enabled the analyzer additionally
// asks the real Go compiler — `go build -gcflags=-m=2` per package, parsed
// by vet.ParseEscapeDiags — and maps every "escapes to heap" / "moved to
// heap" diagnostic whose position falls inside a hot function (a
// //alpha:hotpath root or one of its static callees) onto a finding that
// carries the compiler's own escape-flow explanation. The same
// `//alpha:alloc-ok <why>` line waiver applies; because escape analysis is
// context-sensitive under inlining, diagnostics are matched against hot
// function ranges across the whole module, whichever package's compilation
// produced them. Escape mode needs the host toolchain to compile the tree
// (so it is disabled on the cross-configuration sweeps).
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"

	"alpha/tools/alphavet/internal/vet"
)

// Escape enables the compiler-backed escape-analysis pass on top of the
// syntactic pre-filter. The driver turns it on by default (-escape); it
// stays off here so fixture tests opt in per test.
var Escape = false

var Analyzer = &vet.Analyzer{
	Name:      "hotpathalloc",
	Doc:       "//alpha:hotpath functions and their static callees must not allocate (syntactic pre-filter + compiler escape analysis)",
	RunModule: runModule,
}

// funcKey identifies a function declaration across packages by stable
// strings (export-data token positions are not comparable with source ones).
type funcKey struct {
	pkg  string // package path
	recv string // receiver type name, "" for plain functions
	name string
}

type declInfo struct {
	pass *vet.Pass
	decl *ast.FuncDecl
}

func runModule(passes []*vet.Pass) error {
	// Index every function declaration in the module.
	decls := make(map[funcKey]declInfo)
	var roots []funcKey
	for _, pass := range passes {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := keyOf(fn)
				decls[key] = declInfo{pass, fd}
				if vet.FuncDirective(fd, "hotpath") {
					roots = append(roots, key)
				}
			}
		}
	}

	checked := make(map[funcKey]bool)
	rootOf := make(map[funcKey]string)
	for _, root := range roots {
		visit(decls, root, rootName(root), checked, rootOf)
	}
	if Escape {
		return escapePass(decls, checked, rootOf)
	}
	return nil
}

// visit checks one function and recurses into its module-local callees.
// Each function is checked once: the first hot root to reach it wins the
// attribution in the message.
func visit(decls map[funcKey]declInfo, key funcKey, root string, checked map[funcKey]bool, rootOf map[funcKey]string) {
	if checked[key] {
		return
	}
	checked[key] = true
	rootOf[key] = root
	di, ok := decls[key]
	if !ok || di.decl.Body == nil {
		return
	}
	pass, fd := di.pass, di.decl

	via := ""
	if rootName(key) != root {
		via = fmt.Sprintf(" (hot via %s)", root)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pass.HasLineDirective(n.Pos(), "alloc-ok") {
				// Waived: no finding, and no traversal into the callee —
				// this is how amortized slow paths (cache misses) opt out.
				return true
			}
			checkCall(pass, n, via, decls, root, checked, rootOf)
		case *ast.FuncLit:
			if pass.HasLineDirective(n.Pos(), "alloc-ok") {
				return true
			}
			if !isIIFE(fd.Body, n) {
				pass.Reportf(n.Pos(), "closure in hot path %s%s; closures escape and allocate", rootName(key), via)
				return false
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if !pass.HasLineDirective(n.Pos(), "alloc-ok") {
						pass.Reportf(n.Pos(), "map literal in hot path %s%s", rootName(key), via)
					}
				}
			}
		}
		return true
	})

	checkAppends(pass, fd, via, key)
}

func checkCall(pass *vet.Pass, call *ast.CallExpr, via string, decls map[funcKey]declInfo, root string, checked map[funcKey]bool, rootOf map[funcKey]string) {
	// make(map[...]...) — builtin, no callee object.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) > 0 {
		if tv, ok := pass.Info.Types[call.Args[0]]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(call.Pos(), "make(map) in hot path%s", via)
			}
		}
		return
	}

	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path%s; formatting allocates", fn.Name(), via)
		return
	}

	// Interface boxing at call boundaries: a concrete (non-interface)
	// argument bound to an interface parameter.
	if sig, ok := fn.Type().(*types.Signature); ok {
		checkBoxing(pass, call, sig, via)
	}

	// Recurse into module-local callees (skip interface-method dispatch:
	// the static target is unknown).
	if !strings.HasPrefix(fn.Pkg().Path(), "alpha") {
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv().Underlying()) {
				return
			}
		}
	}
	visit(decls, keyOf(fn), root, checked, rootOf)
}

// checkBoxing reports concrete→interface conversions among call arguments.
func checkBoxing(pass *vet.Pass, call *ast.CallExpr, sig *types.Signature, via string) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Type == nil || tv.IsNil() {
			continue
		}
		if types.IsInterface(tv.Type.Underlying()) {
			continue // already an interface, no new box
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue // pointer-in-interface does not copy the pointee
		}
		if tv.Value != nil {
			continue // constants box at compile time or are interned
		}
		if pass.HasLineDirective(arg.Pos(), "alloc-ok") {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in hot path%s",
			types.TypeString(tv.Type, nil), types.TypeString(pt, nil), via)
	}
}

// checkAppends flags appends that grow fresh or unsized slices.
func checkAppends(pass *vet.Pass, fd *ast.FuncDecl, via string, key funcKey) {
	// Locals declared with no backing capacity: `var s []T` or `s := []T{}`
	// (or explicit nil). Appending to these reallocs as it grows.
	unsized := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
							unsized[obj] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
					continue
				}
				if isEmptySliceExpr(pass, n.Rhs[i]) {
					unsized[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if pass.HasLineDirective(call.Pos(), "alloc-ok") {
			return true
		}
		arg0 := ast.Unparen(call.Args[0])
		switch {
		case isEmptySliceExpr(pass, arg0):
			pass.Reportf(call.Pos(), "append to fresh slice in hot path %s%s; reuse a scratch buffer", rootName(key), via)
		default:
			if id0, ok := arg0.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id0]; obj != nil && unsized[obj] {
					pass.Reportf(call.Pos(), "append to un-presized slice %s in hot path %s%s; preallocate with make(_, 0, n) or reuse a buffer",
						id0.Name, rootName(key), via)
				}
			}
		}
		return true
	})
}

// isEmptySliceExpr matches []T(nil), []T{}, and plain nil converted
// implicitly — the fresh-allocation append idioms.
func isEmptySliceExpr(pass *vet.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CompositeLit:
		tv, ok := pass.Info.Types[e]
		if !ok {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		// Conversion []T(nil).
		if len(e.Args) != 1 {
			return false
		}
		tv, ok := pass.Info.Types[e.Fun]
		if !ok || !tv.IsType() {
			return false
		}
		if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
			return false
		}
		atv, ok := pass.Info.Types[e.Args[0]]
		return ok && atv.IsNil()
	}
	return false
}

// isIIFE reports whether lit is immediately invoked (its parent is a call
// whose Fun is the literal).
func isIIFE(body *ast.BlockStmt, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if ast.Unparen(call.Fun) == lit {
				found = true
			}
		}
		return !found
	})
	return found
}

func calleeFunc(pass *vet.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func keyOf(fn *types.Func) funcKey {
	key := funcKey{pkg: fn.Pkg().Path(), name: fn.Name()}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			key.recv = n.Obj().Name()
		}
	}
	return key
}

// hotRange is one hot function's source extent, for mapping compiler
// diagnostics (file:line) back onto the call graph the syntactic pass built.
type hotRange struct {
	start, end int // body line range, inclusive
	key        funcKey
	pass       *vet.Pass
}

// escapePass drives the real escape analyzer: compile every package that
// holds a hot function with -m=2, then report each heap-escape diagnostic
// that lands inside a hot function and is not waived on its line. The
// compiler's escape-flow explanation rides along in the message.
func escapePass(decls map[funcKey]declInfo, checked map[funcKey]bool, rootOf map[funcKey]string) error {
	// Index hot function extents by file, across the whole module: inlining
	// makes escape analysis context-sensitive, so a diagnostic produced while
	// compiling package P may point into a hot callee in package Q.
	ranges := make(map[string][]hotRange)
	pkgSet := make(map[*vet.Pass]bool)
	for key := range checked {
		di, ok := decls[key]
		if !ok || di.decl.Body == nil {
			continue
		}
		pos := di.pass.Fset.Position(di.decl.Pos())
		end := di.pass.Fset.Position(di.decl.End())
		ranges[pos.Filename] = append(ranges[pos.Filename], hotRange{
			start: pos.Line, end: end.Line, key: key, pass: di.pass,
		})
		pkgSet[di.pass] = true
	}
	if len(pkgSet) == 0 {
		return nil
	}
	passes := make([]*vet.Pass, 0, len(pkgSet))
	for p := range pkgSet {
		passes = append(passes, p)
	}
	sort.Slice(passes, func(i, j int) bool { return passes[i].Path < passes[j].Path })

	// Compile in parallel (each `go build` is mostly a build-cache probe
	// after the first sweep), then map and report serially.
	diags := make([][]vet.EscapeDiag, len(passes))
	errs := make([]error, len(passes))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range passes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p *vet.Pass) {
			defer wg.Done()
			defer func() { <-sem }()
			diags[i], errs[i] = vet.EscapeDiagnostics(p.Pkg)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	seen := make(map[string]bool) // dedupe across package compilations
	for _, ds := range diags {
		for _, d := range ds {
			if !d.Heap {
				continue
			}
			hr, ok := findHotRange(ranges, d.File, d.Line)
			if !ok {
				continue // escape in cold code: someone else's budget
			}
			dedupe := fmt.Sprintf("%s:%d:%d:%s", d.File, d.Line, d.Col, d.Message)
			if seen[dedupe] {
				continue
			}
			seen[dedupe] = true
			if hr.pass.HasDirectiveAtLine(d.File, d.Line, "alloc-ok") {
				continue
			}
			via := ""
			if root := rootOf[hr.key]; root != "" && root != rootName(hr.key) {
				via = fmt.Sprintf(" (hot via %s)", root)
			}
			msg := fmt.Sprintf("%s in hot path %s%s [compiler escape analysis]", d.Message, rootName(hr.key), via)
			if flow := flowSummary(d.Flow); flow != "" {
				msg += ": " + flow
			}
			hr.pass.ReportAt(token.Position{Filename: d.File, Line: d.Line, Column: d.Col}, "%s", msg)
		}
	}
	return nil
}

// findHotRange locates the hot function containing file:line, if any.
func findHotRange(ranges map[string][]hotRange, file string, line int) (hotRange, bool) {
	for _, hr := range ranges[file] {
		if line >= hr.start && line <= hr.end {
			return hr, true
		}
	}
	return hotRange{}, false
}

// flowSummary compresses the compiler's multi-line escape-flow explanation
// into one annotation-friendly line, keeping the first few hops.
func flowSummary(flow []string) string {
	const keep = 5
	n := len(flow)
	if n == 0 {
		return ""
	}
	if n > keep {
		flow = append(flow[:keep:keep], fmt.Sprintf("... (%d more flow steps)", n-keep))
	}
	return strings.Join(flow, " ; ")
}

func rootName(key funcKey) string {
	short := key.pkg
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	if key.recv != "" {
		return short + "." + key.recv + "." + key.name
	}
	return short + "." + key.name
}
