// Fixture for hotpathalloc escape mode: allocations the syntactic
// pre-filter cannot see, caught by the compiler's -m=2 diagnostics.
package a

var sink *int

// Hot leaks a local through a package variable — invisible syntactically,
// "moved to heap" to the compiler.
//
//alpha:hotpath
func Hot(v int) int {
	x := v // want `x escapes to heap in hot path a\.Hot \[compiler escape analysis\]: flow:` `moved to heap: x in hot path a\.Hot \[compiler escape analysis\]`
	sink = &x
	return helper(v) // want `make\(\[\]byte, v\) escapes to heap in hot path a\.Hot \[compiler escape analysis\]`
}

// helper allocates a variable-size buffer; the escape is attributed both at
// the inlined call site above and here in the callee.
func helper(v int) int {
	buf := make([]byte, v) // want `make\(\[\]byte, v\) escapes to heap in hot path a\.helper \(hot via a\.Hot\) \[compiler escape analysis\]`
	return len(buf)
}

// HotWaived allocates too, but the line waiver covers the compiler finding
// the same way it covers syntactic ones.
//
//alpha:hotpath
func HotWaived(v int) int {
	buf := make([]byte, v) //alpha:alloc-ok scratch buffer grows to the high-water mark once
	return len(buf)
}

// Cold escapes all over, but is not hot: the compiler diagnostics land
// outside every hot range and are discarded.
func Cold(v int) *int {
	x := v
	return &x
}
