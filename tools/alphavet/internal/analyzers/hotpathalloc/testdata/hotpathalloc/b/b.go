// Cross-package callee of the hot root in package a.
package b

// Shared is reached from a.Verify's hot path.
func Shared(buf []byte) {
	sink = func() { _ = buf } // want `closure in hot path`
}

var sink func()
