// Fixture for the hotpathalloc analyzer: //alpha:hotpath roots and their
// static callees may not allocate.
package a

import (
	"fmt"

	"alpha/b"
)

// Verify is the hot root.
//
//alpha:hotpath
func Verify(buf []byte) int {
	fmt.Println("verifying") // want `fmt\.Println in hot path`

	handler := func() {} // want `closure in hot path`
	handler()

	seen := map[string]bool{} // want `map literal in hot path`
	_ = seen
	idx := make(map[int]int) // want `make\(map\) in hot path`
	_ = idx

	var acc []byte
	acc = append(acc, buf...) // want `append to un-presized slice acc in hot path`

	fresh := append([]byte{}, buf...) // want `append to fresh slice in hot path`
	_ = fresh

	helper(buf)   // same-package callee is traversed
	b.Shared(buf) // cross-package callee is traversed

	cached(buf) //alpha:alloc-ok cache miss is amortized; traversal stops here
	return len(buf) + len(acc)
}

// helper is hot because Verify calls it.
func helper(buf []byte) {
	m := make(map[int]int) // want `make\(map\) in hot path \(hot via a\.Verify\)`
	_ = m
}

// cached would violate, but its only hot call site is waived, so it is
// never visited.
func cached(buf []byte) {
	m := make(map[int]int)
	_ = m
}

// cold is not annotated and not reachable from a hot root: allocations are
// fine here.
func cold() {
	out := []byte{}
	out = append(out, 1)
	fmt.Println(out, map[int]int{})
}

// presized shows the compliant idioms.
//
//alpha:hotpath
func presized(buf []byte) []byte {
	out := make([]byte, 0, len(buf))
	out = append(out, buf...)
	func() { out = append(out, 0) }() // IIFE does not escape
	return out
}
